//! Pure pipeline stages of the collect-then-analyze workflow.
//!
//! The paper's experiment decomposes into three stage families:
//!
//! 1. **Emit** — a [`WorkloadSession`] drives warmup and measured
//!    operations into an [`AccessSink`];
//! 2. **Simulate** — a memory-system simulator consumes the access
//!    stream and produces classified miss traces;
//! 3. **Analyze** — pure functions over an immutable trace produce the
//!    stream, stride, origin, and function reports.
//!
//! Every function here is deterministic in its inputs and holds no
//! hidden state, so the serial [`Experiment`](crate::Experiment) runner
//! and the parallel `tempstream-runtime` executor both compose the same
//! stages — which is what makes the parallel results bit-identical to
//! the serial ones regardless of worker count or scheduling order.
//!
//! The emit and simulate stages communicate only through the
//! [`PhasedSink`] trait: the serial path hands the session a simulator
//! directly, while the runtime hands it a bounded-channel sink feeding a
//! simulator on another worker. Both observe the identical access
//! sequence with the identical warmup/measurement boundary.

use crate::distribution::{LengthCdf, ReuseDistancePdf};
use crate::experiment::{
    ExperimentConfig, IntraChipResults, OffChipResults, StreamResults, WorkloadResults,
};
use crate::functions::FunctionTable;
use crate::origins::OriginTable;
use crate::report::{
    IntraClassBreakdown, MissClassBreakdown, StreamFractionReport, StrideJointReport,
};
use crate::streams::{StreamAnalysis, StreamLabel};
use crate::stride::StrideDetector;
use std::sync::Arc;
use tempstream_coherence::single_chip::SingleChipTraces;
use tempstream_coherence::{MultiChipSim, SingleChipSim};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::sink::AccessSink;
use tempstream_trace::{IntraChipClass, MissClass, MissTrace, SymbolTable};
use tempstream_workloads::{Scale, Workload, WorkloadSession};

/// An access consumer that distinguishes the warmup phase from the
/// measured phase.
///
/// Simulators flip their recording flag at the boundary; streaming
/// sinks forward a marker so a downstream simulator can do the same.
pub trait PhasedSink: AccessSink {
    /// Called once, after warmup accesses and before measured accesses.
    fn begin_measurement(&mut self);
}

impl PhasedSink for MultiChipSim {
    fn begin_measurement(&mut self) {
        self.set_recording(true);
    }
}

impl PhasedSink for SingleChipSim {
    fn begin_measurement(&mut self) {
        self.set_recording(true);
    }
}

/// Output of the emit stage: measured-phase instruction count and the
/// session's function-name table.
#[derive(Debug)]
pub struct EmitOutput {
    /// Instructions executed during the measured phase (the MPKI
    /// denominator).
    pub instructions: u64,
    /// Function-name table for code-module attribution.
    pub symbols: SymbolTable,
}

/// The measurement scale for `workload` under `cfg`.
pub fn scale_for(cfg: &ExperimentConfig, workload: Workload) -> Scale {
    cfg.scale_override
        .unwrap_or_else(|| workload.default_scale())
}

/// Emit stage: builds the workload deterministically from `seed` and
/// drives its warmup then measured operations into `sink`, announcing
/// the phase boundary via [`PhasedSink::begin_measurement`].
pub fn emit_workload<S: PhasedSink>(
    workload: Workload,
    num_cpus: u32,
    seed: u64,
    scale: Scale,
    sink: &mut S,
) -> EmitOutput {
    tempstream_obsv::global().time("stage/emit", || {
        let mut session = WorkloadSession::new(workload, num_cpus, seed);
        session.run(sink, scale.warmup_ops);
        sink.begin_measurement();
        let stats = session.run(sink, scale.ops);
        EmitOutput {
            instructions: stats.instructions,
            symbols: session.into_symbols(),
        }
    })
}

/// Fused emit+simulate stage for the multi-chip system: collects the
/// off-chip miss trace and symbol table for one workload.
pub fn collect_multi_chip(
    cfg: &ExperimentConfig,
    workload: Workload,
) -> (MissTrace<MissClass>, SymbolTable) {
    tempstream_obsv::global().time("stage/simulate/multi_chip", || {
        let scale = scale_for(cfg, workload);
        let mut sim = MultiChipSim::new(cfg.multi_chip);
        sim.set_recording(false);
        let out = emit_workload(workload, cfg.multi_chip.nodes, cfg.seed, scale, &mut sim);
        sim.export_obsv(
            tempstream_obsv::global(),
            &format!("sim/{}/multi_chip", workload.name()),
        );
        (sim.finish(out.instructions), out.symbols)
    })
}

/// Fused emit+simulate stage for the single-chip system: collects the
/// off-chip and intra-chip traces and the symbol table for one workload.
pub fn collect_single_chip(
    cfg: &ExperimentConfig,
    workload: Workload,
) -> (SingleChipTraces, SymbolTable) {
    tempstream_obsv::global().time("stage/simulate/single_chip", || {
        let scale = scale_for(cfg, workload);
        let mut sim = SingleChipSim::new(cfg.single_chip);
        sim.set_recording(false);
        let out = emit_workload(workload, cfg.single_chip.cores, cfg.seed, scale, &mut sim);
        sim.export_obsv(
            tempstream_obsv::global(),
            &format!("sim/{}/single_chip", workload.name()),
        );
        (sim.finish(out.instructions), out.symbols)
    })
}

/// Truncates `records` to at most `max` entries (the SEQUITUR memory
/// cap); class breakdowns always run over the full trace.
pub fn cap<C>(records: &[MissRecord<C>], max: usize) -> &[MissRecord<C>] {
    &records[..records.len().min(max)]
}

/// Joint repetitive × strided breakdown (Figure 3) from the per-miss
/// stream labels and stride flags.
pub fn joint_breakdown(labels: &[StreamLabel], flags: &[bool]) -> StrideJointReport {
    let mut joint = StrideJointReport::default();
    for (label, &strided) in labels.iter().zip(flags) {
        let repetitive = *label != StreamLabel::NonRepetitive;
        match (repetitive, strided) {
            (false, false) => joint.non_repetitive_non_strided += 1,
            (false, true) => joint.non_repetitive_strided += 1,
            (true, false) => joint.repetitive_non_strided += 1,
            (true, true) => joint.repetitive_strided += 1,
        }
    }
    joint
}

/// Partial result of the SEQUITUR stream-analysis job: everything
/// derived from the stream labels alone.
#[derive(Debug, Clone)]
pub struct StreamsPartial {
    /// Figure 2 segments.
    pub stream_fraction: StreamFractionReport,
    /// Per-miss labels, in trace order (input to the join/origin jobs).
    /// Behind an `Arc` so the parallel executor can hand the label
    /// vector to several analyze jobs without copying ~10⁶ entries.
    pub labels: Arc<Vec<StreamLabel>>,
    /// Figure 4 (left).
    pub length_cdf: LengthCdf,
    /// Figure 4 (right).
    pub reuse_pdf: ReuseDistancePdf,
    /// Distinct streams found by SEQUITUR.
    pub distinct_streams: usize,
}

/// Stream-analysis stage: SEQUITUR labeling plus the label-only reports.
pub fn analyze_streams<C: Copy>(records: &[MissRecord<C>], num_cpus: u32) -> StreamsPartial {
    let analysis = tempstream_obsv::global().time("stage/analyze/streams", || {
        StreamAnalysis::of_records(records, num_cpus)
    });
    let (non, new, rec) = analysis.label_counts();
    StreamsPartial {
        stream_fraction: StreamFractionReport {
            non_repetitive: non,
            new_stream: new,
            recurring_stream: rec,
        },
        labels: Arc::new(analysis.labels().to_vec()),
        length_cdf: analysis.length_cdf(),
        reuse_pdf: analysis.reuse_distance_pdf(),
        distinct_streams: analysis.distinct_streams(),
    }
}

/// Stride-analysis stage: per-miss constant-stride flags.
pub fn analyze_strides<C: Copy>(records: &[MissRecord<C>], num_cpus: u32) -> Vec<bool> {
    tempstream_obsv::global().time("stage/analyze/strides", || {
        StrideDetector::of_records(records, num_cpus)
            .flags()
            .to_vec()
    })
}

/// Origin-attribution stage (Tables 3-5).
pub fn analyze_origins<C: Copy>(
    records: &[MissRecord<C>],
    labels: &[StreamLabel],
    symbols: &SymbolTable,
    workload: Workload,
) -> OriginTable {
    tempstream_obsv::global().time("stage/analyze/origins", || {
        OriginTable::build(records, labels, symbols, workload.app_class())
    })
}

/// Per-function attribution stage (§5 narrative).
pub fn analyze_functions<C: Copy>(
    records: &[MissRecord<C>],
    labels: &[StreamLabel],
    symbols: &SymbolTable,
) -> FunctionTable {
    tempstream_obsv::global().time("stage/analyze/functions", || {
        FunctionTable::build(records, labels, symbols)
    })
}

/// Reduction: assembles the full [`StreamResults`] from the stage
/// partials. Pure and order-free — callers may compute the partials in
/// any order, on any thread.
pub fn assemble_stream_results(
    streams: StreamsPartial,
    flags: &[bool],
    origins: OriginTable,
    functions: FunctionTable,
    analyzed_misses: usize,
) -> StreamResults {
    tempstream_obsv::global().time("stage/reduce", || {
        let stride_joint = joint_breakdown(&streams.labels, flags);
        StreamResults {
            stream_fraction: streams.stream_fraction,
            stride_joint,
            length_cdf: streams.length_cdf,
            reuse_pdf: streams.reuse_pdf,
            origins,
            functions,
            distinct_streams: streams.distinct_streams,
            analyzed_misses,
        }
    })
}

/// Composed analyze stage over one (possibly capped) record slice.
pub fn analyze_stream_results<C: Copy>(
    records: &[MissRecord<C>],
    num_cpus: u32,
    symbols: &SymbolTable,
    workload: Workload,
) -> StreamResults {
    let streams = analyze_streams(records, num_cpus);
    let flags = analyze_strides(records, num_cpus);
    let origins = analyze_origins(records, &streams.labels, symbols, workload);
    let functions = analyze_functions(records, &streams.labels, symbols);
    assemble_stream_results(streams, &flags, origins, functions, records.len())
}

/// Full analyze stage for one off-chip trace: class breakdown over the
/// whole trace, stream analyses over the capped prefix.
pub fn analyze_off_chip(
    trace: &MissTrace<MissClass>,
    symbols: &SymbolTable,
    workload: Workload,
    max_analysis_misses: usize,
) -> OffChipResults {
    OffChipResults {
        breakdown: MissClassBreakdown::of_trace(trace),
        total_misses: trace.len(),
        streams: analyze_stream_results(
            cap(trace.records(), max_analysis_misses),
            trace.num_cpus(),
            symbols,
            workload,
        ),
    }
}

/// Full analyze stage for one intra-chip trace.
pub fn analyze_intra_chip(
    trace: &MissTrace<IntraChipClass>,
    symbols: &SymbolTable,
    workload: Workload,
    max_analysis_misses: usize,
) -> IntraChipResults {
    IntraChipResults {
        breakdown: IntraClassBreakdown::of_trace(trace),
        total_misses: trace.len(),
        streams: analyze_stream_results(
            cap(trace.records(), max_analysis_misses),
            trace.num_cpus(),
            symbols,
            workload,
        ),
    }
}

/// Serial composition of every stage for one workload — the reference
/// the parallel executor must match bit-for-bit.
pub fn run_workload_serial(cfg: &ExperimentConfig, workload: Workload) -> WorkloadResults {
    let (mc_trace, mc_symbols) = collect_multi_chip(cfg, workload);
    let multi_chip = analyze_off_chip(&mc_trace, &mc_symbols, workload, cfg.max_analysis_misses);
    drop(mc_trace);

    let (sc_traces, sc_symbols) = collect_single_chip(cfg, workload);
    let single_chip = analyze_off_chip(
        &sc_traces.off_chip,
        &sc_symbols,
        workload,
        cfg.max_analysis_misses,
    );
    let intra_chip = analyze_intra_chip(
        &sc_traces.intra_chip,
        &sc_symbols,
        workload,
        cfg.max_analysis_misses,
    );

    WorkloadResults {
        workload,
        multi_chip,
        single_chip,
        intra_chip,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_matches_phased_emit() {
        // The PhasedSink boundary must reproduce the exact recording
        // window the serial simulators used before the refactor.
        let cfg = ExperimentConfig::quick();
        let (trace, _) = collect_multi_chip(&cfg, Workload::Apache);
        assert!(!trace.is_empty(), "no misses recorded");
        assert!(trace.instructions() > 0, "instructions not forwarded");
    }

    #[test]
    fn joint_breakdown_counts_all_pairs() {
        let labels = [
            StreamLabel::NonRepetitive,
            StreamLabel::NewStream,
            StreamLabel::RecurringStream,
            StreamLabel::NonRepetitive,
        ];
        let flags = [true, false, true, false];
        let j = joint_breakdown(&labels, &flags);
        assert_eq!(j.non_repetitive_strided, 1);
        assert_eq!(j.repetitive_non_strided, 1);
        assert_eq!(j.repetitive_strided, 1);
        assert_eq!(j.non_repetitive_non_strided, 1);
        assert_eq!(j.total(), 4);
    }

    #[test]
    fn split_stages_match_composed_analysis() {
        let cfg = ExperimentConfig::quick();
        let (trace, symbols) = collect_multi_chip(&cfg, Workload::Oltp);
        let records = cap(trace.records(), cfg.max_analysis_misses);
        let composed = analyze_stream_results(records, trace.num_cpus(), &symbols, Workload::Oltp);

        let streams = analyze_streams(records, trace.num_cpus());
        let flags = analyze_strides(records, trace.num_cpus());
        let origins = analyze_origins(records, &streams.labels, &symbols, Workload::Oltp);
        let functions = analyze_functions(records, &streams.labels, &symbols);
        let split = assemble_stream_results(streams, &flags, origins, functions, records.len());

        assert_eq!(split.stream_fraction, composed.stream_fraction);
        assert_eq!(split.stride_joint, composed.stride_joint);
        assert_eq!(split.distinct_streams, composed.distinct_streams);
        assert_eq!(split.analyzed_misses, composed.analyzed_misses);
    }
}
