//! Constant-stride run detection.
//!
//! Whether a miss is stride-predictable is orthogonal to whether it is in
//! a temporal stream (paper §4.3). This detector scans each processor's
//! miss sub-sequence: a run of misses with a constant non-zero
//! block-granularity delta of at least [`MIN_RUN`] misses marks every
//! miss in the run as strided — the set a conventional stride prefetcher
//! could cover.

use tempstream_trace::miss::MissRecord;
use tempstream_trace::{Block, MissTrace};

/// Minimum misses in a constant-stride run for it to count as strided
/// (detect + 1 confirm + 1 covered).
pub const MIN_RUN: usize = 3;

/// Maximum absolute stride, in blocks, the detector tracks (covers unit
/// and page-sized strides; larger deltas defeat real stride prefetchers'
/// distance fields).
pub const MAX_STRIDE: i64 = 64;

/// Per-CPU constant-stride run detection over a miss trace.
#[derive(Debug, Clone)]
pub struct StrideDetector {
    strided: Vec<bool>,
}

#[derive(Debug, Clone, Copy, Default)]
struct CpuState {
    last_block: Option<Block>,
    last_delta: Option<i64>,
    last_index: usize,
    /// Trace indices of the current candidate run's first misses. Only
    /// a run's confirmation (at [`MIN_RUN`] members) marks earlier
    /// misses retroactively; past that point each new member is marked
    /// directly, so [`MIN_RUN`] inline slots replace an unbounded
    /// per-cpu heap buffer.
    run: [usize; MIN_RUN],
    run_len: usize,
}

impl StrideDetector {
    /// Labels every miss of `trace` as strided or not.
    pub fn of_trace<C: Copy>(trace: &MissTrace<C>) -> Self {
        Self::of_records(trace.records(), trace.num_cpus())
    }

    /// Labels a raw record slice.
    pub fn of_records<C: Copy>(records: &[MissRecord<C>], num_cpus: u32) -> Self {
        let mut strided = vec![false; records.len()];
        let mut states = vec![CpuState::default(); num_cpus.max(1) as usize];

        for (i, r) in records.iter().enumerate() {
            let c = r.cpu.index();
            let st = &mut states[c];
            let delta = st.last_block.map(|lb| r.block.stride_from(lb));
            let usable = |d: i64| d != 0 && d.abs() <= MAX_STRIDE;
            let continues = matches!((delta, st.last_delta),
                (Some(d), Some(ld)) if d == ld && usable(d));
            if continues {
                if st.run_len >= MIN_RUN {
                    strided[i] = true;
                } else {
                    st.run[st.run_len] = i;
                    st.run_len += 1;
                    if st.run_len == MIN_RUN {
                        // Mark the whole run (earlier members
                        // retroactively).
                        for &j in &st.run[..MIN_RUN] {
                            strided[j] = true;
                        }
                    }
                }
            } else {
                // This miss may begin a new run seeded by the previous
                // miss on the same cpu.
                st.run_len = 0;
                if let Some(d) = delta {
                    if usable(d) {
                        st.run[0] = st.last_index;
                        st.run[1] = i;
                        st.run_len = 2;
                    }
                }
            }
            st.last_delta = delta;
            st.last_block = Some(r.block);
            st.last_index = i;
        }

        StrideDetector { strided }
    }

    /// Per-miss strided flags, aligned with the trace.
    pub fn flags(&self) -> &[bool] {
        &self.strided
    }

    /// Returns `true` if miss `i` is stride-predictable.
    pub fn is_strided(&self, i: usize) -> bool {
        self.strided[i]
    }

    /// Number of strided misses.
    pub fn strided_count(&self) -> u64 {
        self.strided.iter().filter(|&&b| b).count() as u64
    }

    /// Fraction of misses that are strided.
    pub fn strided_fraction(&self) -> f64 {
        crate::engine::frac(self.strided_count(), self.strided.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{CpuId, FunctionId, MissClass, ThreadId};

    fn trace(blocks: &[(u64, u32)]) -> MissTrace<MissClass> {
        let cpus = blocks.iter().map(|&(_, c)| c).max().unwrap_or(0) + 1;
        let mut t = MissTrace::new(cpus);
        for &(b, c) in blocks {
            t.push(MissRecord {
                block: Block::new(b),
                cpu: CpuId::new(c),
                thread: ThreadId::new(c),
                function: FunctionId::new(0),
                class: MissClass::Replacement,
            });
        }
        t
    }

    fn seq(blocks: &[u64]) -> MissTrace<MissClass> {
        let v: Vec<(u64, u32)> = blocks.iter().map(|&b| (b, 0)).collect();
        trace(&v)
    }

    #[test]
    fn unit_stride_run_detected() {
        let d = StrideDetector::of_trace(&seq(&[10, 11, 12, 13]));
        assert_eq!(d.flags(), &[true, true, true, true]);
    }

    #[test]
    fn two_misses_are_not_a_run() {
        let d = StrideDetector::of_trace(&seq(&[10, 11, 50, 90]));
        // 10->11 is a candidate pair but never confirmed; 50->90 exceeds
        // MAX_STRIDE.
        assert_eq!(d.strided_count(), 0);
    }

    #[test]
    fn negative_stride_detected() {
        let d = StrideDetector::of_trace(&seq(&[30, 28, 26, 24]));
        assert_eq!(d.strided_count(), 4);
    }

    #[test]
    fn random_sequence_not_strided() {
        let d = StrideDetector::of_trace(&seq(&[5, 90, 2, 77, 31, 8]));
        assert_eq!(d.strided_count(), 0);
    }

    #[test]
    fn run_break_resets() {
        let d = StrideDetector::of_trace(&seq(&[1, 2, 3, 100, 200, 300]));
        // The 100/200/300 deltas exceed MAX_STRIDE.
        assert_eq!(d.flags(), &[true, true, true, false, false, false]);
    }

    #[test]
    fn repeated_same_block_is_not_strided() {
        let d = StrideDetector::of_trace(&seq(&[7, 7, 7, 7, 7]));
        assert_eq!(d.strided_count(), 0);
    }

    #[test]
    fn per_cpu_streams_are_independent() {
        // cpu0 strides 1,2,3,4; cpu1 interleaves random blocks.
        let d = StrideDetector::of_trace(&trace(&[
            (1, 0),
            (50, 1),
            (2, 0),
            (9, 1),
            (3, 0),
            (70, 1),
            (4, 0),
        ]));
        assert!(d.is_strided(0));
        assert!(d.is_strided(2));
        assert!(d.is_strided(4));
        assert!(d.is_strided(6));
        assert!(!d.is_strided(1));
        assert!(!d.is_strided(3));
        assert!(!d.is_strided(5));
    }

    #[test]
    fn page_stride_detected() {
        // 64-block (4 KB) stride — page-sized copies.
        let d = StrideDetector::of_trace(&seq(&[0, 64, 128, 192]));
        assert_eq!(d.strided_count(), 4);
    }

    #[test]
    fn stride_change_starts_new_run() {
        let d = StrideDetector::of_trace(&seq(&[0, 1, 2, 4, 6, 8]));
        // 0,1,2 is a unit run; 2->4,4->6,6->8 is a stride-2 run; the miss
        // at 2 belongs to the first run, misses 4,6,8 plus the pair seed
        // are the second.
        assert!(d.is_strided(0) && d.is_strided(1) && d.is_strided(2));
        assert!(d.is_strided(4) && d.is_strided(5));
    }

    #[test]
    fn empty_trace() {
        let d = StrideDetector::of_trace(&seq(&[]));
        assert_eq!(d.strided_fraction(), 0.0);
    }
}
