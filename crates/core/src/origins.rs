//! Code-module origin analysis (Tables 3-5).
//!
//! Every miss carries the function active at the miss; the symbol table
//! maps functions to the paper's Table-2 categories. Joining the per-miss
//! category with the per-miss stream label yields, per category: its share
//! of all misses and the share of all misses that are both in this
//! category *and* in a temporal stream — the two columns of Tables 3-5.

use crate::engine::frac;
use crate::streams::StreamLabel;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::{AppClass, MissCategory, SymbolTable};

/// One row of an origin table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OriginRow {
    /// The category.
    pub category: MissCategory,
    /// Misses attributed to the category.
    pub misses: u64,
    /// Of those, misses inside temporal streams (new or recurring).
    pub misses_in_streams: u64,
}

impl OriginRow {
    /// Share of all misses (`% misses` column), given the trace total.
    pub fn miss_share(&self, total: u64) -> f64 {
        frac(self.misses, total)
    }

    /// Share of all misses that are in this category and in streams
    /// (`% in streams` column), given the trace total.
    pub fn stream_share(&self, total: u64) -> f64 {
        frac(self.misses_in_streams, total)
    }

    /// Within-category stream fraction.
    pub fn stream_fraction(&self) -> f64 {
        frac(self.misses_in_streams, self.misses)
    }
}

/// An origin table for one workload/context pair.
#[derive(Debug, Clone)]
pub struct OriginTable {
    /// Application class (selects the category row set).
    pub app_class: AppClass,
    /// Rows in Tables 3-5 order.
    pub rows: Vec<OriginRow>,
    /// Total misses in the analyzed trace.
    pub total_misses: u64,
}

impl OriginTable {
    /// Builds the table by joining records, stream labels, and the symbol
    /// table.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is not index-aligned with `records`.
    pub fn build<C: Copy>(
        records: &[MissRecord<C>],
        labels: &[StreamLabel],
        symbols: &SymbolTable,
        app_class: AppClass,
    ) -> Self {
        assert_eq!(
            records.len(),
            labels.len(),
            "labels must align with records"
        );
        let categories = MissCategory::for_app(app_class);
        let index_of = |c: MissCategory| categories.iter().position(|&x| x == c);
        let mut rows: Vec<OriginRow> = categories
            .iter()
            .map(|&category| OriginRow {
                category,
                misses: 0,
                misses_in_streams: 0,
            })
            .collect();
        for (r, &label) in records.iter().zip(labels) {
            let cat = symbols.category(r.function);
            // Functions from categories outside this app class's row set
            // (shouldn't happen in practice) are counted as Uncategorized.
            let idx = index_of(cat).unwrap_or(0);
            rows[idx].misses += 1;
            if label != StreamLabel::NonRepetitive {
                rows[idx].misses_in_streams += 1;
            }
        }
        OriginTable {
            app_class,
            rows,
            total_misses: records.len() as u64,
        }
    }

    /// Overall fraction of misses in streams (the tables' bottom line).
    pub fn overall_stream_fraction(&self) -> f64 {
        let in_streams: u64 = self.rows.iter().map(|r| r.misses_in_streams).sum();
        frac(in_streams, self.total_misses)
    }

    /// The row for `category`, if present in this app class's row set.
    pub fn row(&self, category: MissCategory) -> Option<&OriginRow> {
        self.rows.iter().find(|r| r.category == category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

    fn record(function: FunctionId) -> MissRecord<MissClass> {
        MissRecord {
            block: Block::new(0),
            cpu: CpuId::new(0),
            thread: ThreadId::new(0),
            function,
            class: MissClass::Replacement,
        }
    }

    #[test]
    fn rows_and_shares() {
        let mut sym = SymbolTable::new();
        let f_copy = sym.intern("memcpy", MissCategory::BulkMemoryCopy);
        let f_poll = sym.intern("poll", MissCategory::SystemCall);
        let records = vec![
            record(f_copy),
            record(f_copy),
            record(f_poll),
            record(f_poll),
        ];
        let labels = vec![
            StreamLabel::NewStream,
            StreamLabel::RecurringStream,
            StreamLabel::NonRepetitive,
            StreamLabel::RecurringStream,
        ];
        let t = OriginTable::build(&records, &labels, &sym, AppClass::Web);
        assert_eq!(t.total_misses, 4);
        let copy_row = t.row(MissCategory::BulkMemoryCopy).unwrap();
        assert_eq!(copy_row.misses, 2);
        assert_eq!(copy_row.misses_in_streams, 2);
        assert!((copy_row.miss_share(4) - 0.5).abs() < 1e-12);
        let poll_row = t.row(MissCategory::SystemCall).unwrap();
        assert_eq!(poll_row.misses_in_streams, 1);
        assert!((poll_row.stream_fraction() - 0.5).abs() < 1e-12);
        assert!((t.overall_stream_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn out_of_class_category_falls_to_uncategorized() {
        let mut sym = SymbolTable::new();
        // A DB2 function appearing in a Web-class table.
        let f = sym.intern("sqliFetch", MissCategory::Db2IndexPageTuple);
        let records = vec![record(f)];
        let labels = vec![StreamLabel::NonRepetitive];
        let t = OriginTable::build(&records, &labels, &sym, AppClass::Web);
        assert_eq!(t.row(MissCategory::Uncategorized).unwrap().misses, 1);
        assert!(t.row(MissCategory::Db2IndexPageTuple).is_none());
    }

    #[test]
    fn empty_trace_table() {
        let sym = SymbolTable::new();
        let t = OriginTable::build::<MissClass>(&[], &[], &sym, AppClass::Oltp);
        assert_eq!(t.total_misses, 0);
        assert_eq!(t.overall_stream_fraction(), 0.0);
        assert_eq!(t.rows.len(), 13);
    }

    #[test]
    #[should_panic(expected = "labels must align")]
    fn misaligned_labels_panic() {
        let sym = SymbolTable::new();
        let records = vec![record(FunctionId::new(0))];
        OriginTable::build(&records, &[], &sym, AppClass::Web);
    }
}
