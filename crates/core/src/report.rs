//! Typed reports with `Display` impls that print the paper's figures and
//! tables as text.

use crate::distribution::{LengthCdf, ReuseDistancePdf};
use crate::engine::frac;
use crate::origins::OriginTable;
use std::fmt;
use tempstream_trace::{IntraChipClass, MissClass, MissTrace};

/// Figure 1 (left): off-chip read misses per 1000 instructions by class.
#[derive(Debug, Clone)]
pub struct MissClassBreakdown {
    counts: [u64; 4],
    instructions: u64,
    total: u64,
}

impl MissClassBreakdown {
    /// Builds the breakdown from an off-chip trace.
    pub fn of_trace(trace: &MissTrace<MissClass>) -> Self {
        let mut counts = [0u64; 4];
        for r in trace.records() {
            let i = MissClass::ALL
                .iter()
                .position(|&c| c == r.class)
                .expect("class in ALL");
            counts[i] += 1;
        }
        MissClassBreakdown {
            counts,
            instructions: trace.instructions(),
            total: trace.len() as u64,
        }
    }

    /// Misses of `class`.
    pub fn count(&self, class: MissClass) -> u64 {
        let i = MissClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("in ALL");
        self.counts[i]
    }

    /// Misses of `class` per 1000 instructions.
    pub fn mpki(&self, class: MissClass) -> f64 {
        frac(self.count(class) * 1000, self.instructions)
    }

    /// All misses per 1000 instructions.
    pub fn total_mpki(&self) -> f64 {
        frac(self.total * 1000, self.instructions)
    }

    /// Fraction of misses with `class`.
    pub fn fraction(&self, class: MissClass) -> f64 {
        frac(self.count(class), self.total)
    }

    /// Total misses.
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl fmt::Display for MissClassBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in MissClass::ALL {
            writeln!(
                f,
                "  {:<14} {:>9.4} /1k instr  ({:>5.1}%)",
                class.label(),
                self.mpki(class),
                self.fraction(class) * 100.0
            )?;
        }
        write!(f, "  {:<14} {:>9.4} /1k instr", "total", self.total_mpki())
    }
}

/// Figure 1 (right): intra-chip L1 misses per 1000 instructions by cause
/// and responder.
#[derive(Debug, Clone)]
pub struct IntraClassBreakdown {
    counts: [u64; 4],
    instructions: u64,
    total: u64,
}

impl IntraClassBreakdown {
    /// Builds the breakdown from an intra-chip trace.
    pub fn of_trace(trace: &MissTrace<IntraChipClass>) -> Self {
        let mut counts = [0u64; 4];
        for r in trace.records() {
            let i = IntraChipClass::ALL
                .iter()
                .position(|&c| c == r.class)
                .expect("class in ALL");
            counts[i] += 1;
        }
        IntraClassBreakdown {
            counts,
            instructions: trace.instructions(),
            total: trace.len() as u64,
        }
    }

    /// Misses of `class`.
    pub fn count(&self, class: IntraChipClass) -> u64 {
        let i = IntraChipClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("in ALL");
        self.counts[i]
    }

    /// Misses of `class` per 1000 instructions.
    pub fn mpki(&self, class: IntraChipClass) -> f64 {
        frac(self.count(class) * 1000, self.instructions)
    }

    /// Fraction of misses with `class`.
    pub fn fraction(&self, class: IntraChipClass) -> f64 {
        frac(self.count(class), self.total)
    }

    /// Total misses.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All misses per 1000 instructions.
    pub fn total_mpki(&self) -> f64 {
        frac(self.total * 1000, self.instructions)
    }
}

impl fmt::Display for IntraClassBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in IntraChipClass::ALL {
            writeln!(
                f,
                "  {:<18} {:>9.4} /1k instr  ({:>5.1}%)",
                class.label(),
                self.mpki(class),
                self.fraction(class) * 100.0
            )?;
        }
        write!(f, "  {:<18} {:>9.4} /1k instr", "total", self.total_mpki())
    }
}

/// Figure 2: fraction of misses in temporal streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFractionReport {
    /// Misses outside any stream.
    pub non_repetitive: u64,
    /// Misses in first occurrences.
    pub new_stream: u64,
    /// Misses in repeat occurrences.
    pub recurring_stream: u64,
}

impl StreamFractionReport {
    /// Total misses.
    pub fn total(&self) -> u64 {
        self.non_repetitive + self.new_stream + self.recurring_stream
    }

    /// Fraction in streams (new + recurring).
    pub fn in_streams(&self) -> f64 {
        frac(self.new_stream + self.recurring_stream, self.total())
    }

    /// Fraction in recurring occurrences only.
    pub fn recurring_fraction(&self) -> f64 {
        frac(self.recurring_stream, self.total())
    }
}

impl fmt::Display for StreamFractionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total();
        write!(
            f,
            "non-repetitive {:>5.1}% | new stream {:>5.1}% | recurring stream {:>5.1}%",
            frac(self.non_repetitive * 100, t),
            frac(self.new_stream * 100, t),
            frac(self.recurring_stream * 100, t)
        )
    }
}

/// Figure 3: joint strided × repetitive breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrideJointReport {
    /// Not in a stream, not strided.
    pub non_repetitive_non_strided: u64,
    /// Not in a stream, strided.
    pub non_repetitive_strided: u64,
    /// In a stream, not strided.
    pub repetitive_non_strided: u64,
    /// In a stream, strided.
    pub repetitive_strided: u64,
}

impl StrideJointReport {
    /// Total misses.
    pub fn total(&self) -> u64 {
        self.non_repetitive_non_strided
            + self.non_repetitive_strided
            + self.repetitive_non_strided
            + self.repetitive_strided
    }

    /// Fraction that is strided (either repetitiveness).
    pub fn strided_fraction(&self) -> f64 {
        frac(
            self.non_repetitive_strided + self.repetitive_strided,
            self.total(),
        )
    }

    /// Fraction that is repetitive (either stride behaviour).
    pub fn repetitive_fraction(&self) -> f64 {
        frac(
            self.repetitive_non_strided + self.repetitive_strided,
            self.total(),
        )
    }
}

impl fmt::Display for StrideJointReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total();
        writeln!(
            f,
            "  repetitive   : strided {:>5.1}%  non-strided {:>5.1}%",
            frac(self.repetitive_strided * 100, t),
            frac(self.repetitive_non_strided * 100, t)
        )?;
        write!(
            f,
            "  non-repetitive: strided {:>5.1}%  non-strided {:>5.1}%",
            frac(self.non_repetitive_strided * 100, t),
            frac(self.non_repetitive_non_strided * 100, t)
        )
    }
}

/// Renders a length CDF as the Figure-4-left series.
pub fn format_length_cdf(cdf: &LengthCdf) -> String {
    use fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  median stream length: {}",
        cdf.median().map_or("n/a".into(), |m| m.to_string())
    );
    for (len, frac) in cdf.log_samples() {
        let _ = writeln!(s, "    len <= {:>6}: {:>5.1}%", len, frac * 100.0);
    }
    s
}

/// Renders a reuse-distance PDF as the Figure-4-right series.
pub fn format_reuse_pdf(pdf: &ReuseDistancePdf) -> String {
    use fmt::Write;
    let mut s = String::new();
    for (decade, frac) in pdf.decades() {
        let _ = writeln!(
            s,
            "    dist ~10^{}: {:>5.1}%",
            decade.ilog10(),
            frac * 100.0
        );
    }
    let _ = writeln!(
        s,
        "    (truncated beyond 10^7: {} weighted misses)",
        pdf.truncated_weight()
    );
    s
}

/// Renders an origin table in the paper's Tables 3-5 layout for one
/// context.
pub fn format_origin_table(table: &OriginTable) -> String {
    use fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<36} {:>9} {:>12}",
        "category", "% misses", "% in streams"
    );
    for row in &table.rows {
        let _ = writeln!(
            s,
            "  {:<36} {:>8.1}% {:>11.1}%",
            row.category.label(),
            row.miss_share(table.total_misses) * 100.0,
            row.stream_share(table.total_misses) * 100.0
        );
    }
    let _ = writeln!(
        s,
        "  {:<36} {:>8} {:>11.1}%",
        "Overall % in streams",
        "",
        table.overall_stream_fraction() * 100.0
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::miss::MissRecord;
    use tempstream_trace::{Block, CpuId, FunctionId, ThreadId};

    fn off_trace(classes: &[MissClass]) -> MissTrace<MissClass> {
        let mut t = MissTrace::new(1);
        for (i, &c) in classes.iter().enumerate() {
            t.push(MissRecord {
                block: Block::new(i as u64),
                cpu: CpuId::new(0),
                thread: ThreadId::new(0),
                function: FunctionId::new(0),
                class: c,
            });
        }
        t.set_instructions(4000);
        t
    }

    #[test]
    fn class_breakdown_counts_and_mpki() {
        let t = off_trace(&[
            MissClass::Coherence,
            MissClass::Coherence,
            MissClass::Compulsory,
            MissClass::Replacement,
        ]);
        let b = MissClassBreakdown::of_trace(&t);
        assert_eq!(b.count(MissClass::Coherence), 2);
        assert!((b.mpki(MissClass::Coherence) - 0.5).abs() < 1e-12);
        assert!((b.total_mpki() - 1.0).abs() < 1e-12);
        assert!((b.fraction(MissClass::Compulsory) - 0.25).abs() < 1e-12);
        assert!(b.to_string().contains("Coherence"));
    }

    #[test]
    fn intra_breakdown() {
        let mut t: MissTrace<IntraChipClass> = MissTrace::new(1);
        t.push(MissRecord {
            block: Block::new(0),
            cpu: CpuId::new(0),
            thread: ThreadId::new(0),
            function: FunctionId::new(0),
            class: IntraChipClass::CoherencePeerL1,
        });
        t.set_instructions(1000);
        let b = IntraClassBreakdown::of_trace(&t);
        assert_eq!(b.count(IntraChipClass::CoherencePeerL1), 1);
        assert_eq!(b.count(IntraChipClass::OffChip), 0);
        assert!((b.total_mpki() - 1.0).abs() < 1e-12);
        assert!(b.to_string().contains("Peer-L1"));
    }

    #[test]
    fn stream_fraction_report() {
        let r = StreamFractionReport {
            non_repetitive: 20,
            new_stream: 30,
            recurring_stream: 50,
        };
        assert_eq!(r.total(), 100);
        assert!((r.in_streams() - 0.8).abs() < 1e-12);
        assert!((r.recurring_fraction() - 0.5).abs() < 1e-12);
        assert!(r.to_string().contains("recurring"));
    }

    #[test]
    fn stride_joint_report() {
        let r = StrideJointReport {
            non_repetitive_non_strided: 10,
            non_repetitive_strided: 20,
            repetitive_non_strided: 30,
            repetitive_strided: 40,
        };
        assert_eq!(r.total(), 100);
        assert!((r.strided_fraction() - 0.6).abs() < 1e-12);
        assert!((r.repetitive_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn formatters_do_not_panic_on_empty() {
        let cdf = LengthCdf::new();
        let pdf = ReuseDistancePdf::new();
        assert!(format_length_cdf(&cdf).contains("n/a"));
        assert!(format_reuse_pdf(&pdf).contains("10^0"));
    }
}
