//! Spatial-pattern analysis: the companion view to temporal streams.
//!
//! The paper's introduction situates temporal streams against *spatial
//! memory streaming* (Somogyi et al., cited as \[22\]): instead of
//! recurring miss *sequences*, SMS exploits recurring *bit patterns* of
//! blocks touched within an aligned region, predicted from the trigger
//! access's code location and offset. This module measures how spatially
//! predictable a miss trace is, so the two phenomena can be compared on
//! the same traces:
//!
//! - a *generation* of a region starts at the first miss to the region
//!   and ends once the region goes untouched for a gap of misses;
//! - the generation's *pattern* is the set of block offsets missed;
//! - a generation is *predicted* if the last pattern recorded for its
//!   trigger signature — (trigger function, trigger offset), the SMS
//!   (PC, offset) analogue — equals its pattern.

use tempstream_fxhash::FxHashMap;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::{FunctionId, MissTrace};

/// Blocks per spatial region (2 KB regions, as in SMS's sweet spot).
pub const REGION_BLOCKS: u64 = 32;

/// Trace-distance gap (in misses) that closes a generation.
pub const GENERATION_GAP: u64 = 512;

/// A trigger signature: the SMS (PC, offset) analogue.
type Signature = (FunctionId, u8);

#[derive(Debug, Clone, Copy)]
struct OpenGeneration {
    pattern: u64,
    signature: Signature,
    last_touch: u64,
}

/// Results of spatial-pattern analysis.
#[derive(Debug, Clone, Default)]
pub struct SpatialAnalysis {
    /// Closed generations observed.
    pub generations: u64,
    /// Generations whose pattern matched the last pattern for their
    /// trigger signature.
    pub predicted: u64,
    /// Misses inside predicted generations (coverage-weighted view).
    pub predicted_misses: u64,
    /// Total misses analyzed.
    pub total_misses: u64,
    /// Sum of pattern densities (blocks touched per generation).
    blocks_touched: u64,
}

impl SpatialAnalysis {
    /// Analyzes a miss trace with the default region/gap parameters.
    pub fn of_trace<C: Copy>(trace: &MissTrace<C>) -> Self {
        Self::of_records(trace.records())
    }

    /// Analyzes a record slice.
    pub fn of_records<C: Copy>(records: &[MissRecord<C>]) -> Self {
        let mut open: FxHashMap<u64, OpenGeneration> = FxHashMap::default();
        let mut last_pattern: FxHashMap<Signature, u64> = FxHashMap::default();
        let mut out = SpatialAnalysis {
            total_misses: records.len() as u64,
            ..Default::default()
        };

        for (pos, r) in records.iter().enumerate() {
            let pos = pos as u64;
            let region = r.block.raw() / REGION_BLOCKS;
            let offset = (r.block.raw() % REGION_BLOCKS) as u8;

            // Close stale generations lazily: only the touched region is
            // checked here; the rest are swept at the end and whenever the
            // map grows large.
            if let Some(g) = open.get_mut(&region) {
                if pos - g.last_touch > GENERATION_GAP {
                    let done = open.remove(&region).expect("present");
                    out.close(done, &mut last_pattern);
                } else {
                    g.pattern |= 1 << offset;
                    g.last_touch = pos;
                    continue;
                }
            }
            open.insert(
                region,
                OpenGeneration {
                    pattern: 1 << offset,
                    signature: (r.function, offset),
                    last_touch: pos,
                },
            );
            // Bound the open set: sweep anything stale.
            if open.len() > 1 << 16 {
                let mut stale: Vec<u64> = open
                    .iter()
                    .filter(|(_, g)| pos - g.last_touch > GENERATION_GAP)
                    .map(|(&k, _)| k)
                    .collect();
                // Close in region order: same-signature generations
                // closing in map iteration order would make `predicted`
                // depend on the hasher.
                stale.sort_unstable();
                for k in stale {
                    let g = open.remove(&k).expect("present");
                    out.close(g, &mut last_pattern);
                }
            }
        }
        let mut remaining: Vec<u64> = open.keys().copied().collect();
        remaining.sort_unstable();
        for k in remaining {
            let g = open.remove(&k).expect("present");
            out.close(g, &mut last_pattern);
        }
        out
    }

    fn close(&mut self, g: OpenGeneration, last: &mut FxHashMap<Signature, u64>) {
        self.generations += 1;
        let blocks = g.pattern.count_ones() as u64;
        self.blocks_touched += blocks;
        if last.insert(g.signature, g.pattern) == Some(g.pattern) {
            self.predicted += 1;
            self.predicted_misses += blocks;
        }
    }

    /// Fraction of generations whose pattern recurred for their trigger.
    pub fn prediction_rate(&self) -> f64 {
        if self.generations == 0 {
            0.0
        } else {
            self.predicted as f64 / self.generations as f64
        }
    }

    /// Fraction of misses inside predicted generations.
    pub fn predicted_miss_fraction(&self) -> f64 {
        if self.total_misses == 0 {
            0.0
        } else {
            self.predicted_misses as f64 / self.total_misses as f64
        }
    }

    /// Average blocks touched per generation (pattern density).
    pub fn mean_density(&self) -> f64 {
        if self.generations == 0 {
            0.0
        } else {
            self.blocks_touched as f64 / self.generations as f64
        }
    }
}

impl std::fmt::Display for SpatialAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} generations, {:.1}% pattern-predicted ({:.1}% of misses), \
             mean density {:.1} blocks",
            self.generations,
            self.prediction_rate() * 100.0,
            self.predicted_miss_fraction() * 100.0,
            self.mean_density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Block, CpuId, MissClass, ThreadId};

    fn rec(block: u64, function: u32) -> MissRecord<MissClass> {
        MissRecord {
            block: Block::new(block),
            cpu: CpuId::new(0),
            thread: ThreadId::new(0),
            function: FunctionId::new(function),
            class: MissClass::Replacement,
        }
    }

    /// Interleaves `n` filler misses in distinct far-away regions, each
    /// with a unique trigger function so fillers never predict each other.
    fn filler(start: u64, n: u64) -> Vec<MissRecord<MissClass>> {
        (0..n)
            .map(|i| {
                rec(
                    (start + i) * REGION_BLOCKS * 7 + 5_000_000,
                    1000 + (start + i) as u32,
                )
            })
            .collect()
    }

    #[test]
    fn recurring_pattern_is_predicted() {
        // Two generations of region 0, same trigger (fn 1, offset 0), same
        // pattern {0, 3, 7}.
        let mut records = vec![rec(0, 1), rec(3, 1), rec(7, 1)];
        records.extend(filler(1, GENERATION_GAP + 10));
        records.extend([rec(0, 1), rec(3, 1), rec(7, 1)]);
        records.extend(filler(9000, GENERATION_GAP + 10));
        let a = SpatialAnalysis::of_records(&records);
        assert!(a.predicted >= 1, "second generation must be predicted");
        assert!(a.prediction_rate() > 0.0);
    }

    #[test]
    fn changed_pattern_is_not_predicted() {
        let mut records = vec![rec(0, 1), rec(3, 1)];
        records.extend(filler(1, GENERATION_GAP + 10));
        records.extend([rec(0, 1), rec(9, 1)]); // different pattern
        records.extend(filler(9000, GENERATION_GAP + 10));
        let a = SpatialAnalysis::of_records(&records);
        // Region-0 generations: first unpredicted (no history), second has
        // history but wrong pattern.
        assert_eq!(a.predicted_misses, 0);
    }

    #[test]
    fn generation_stays_open_within_gap() {
        // Touches within the gap belong to one generation.
        let records = vec![rec(0, 1), rec(1, 1), rec(2, 1), rec(0, 1)];
        let a = SpatialAnalysis::of_records(&records);
        assert_eq!(a.generations, 1);
        assert!((a.mean_density() - 3.0).abs() < 1e-12); // offsets {0,1,2}
    }

    #[test]
    fn different_triggers_do_not_alias() {
        // Same region and pattern, but a different trigger function on the
        // repeat: not predicted.
        let mut records = vec![rec(0, 1), rec(3, 1)];
        records.extend(filler(1, GENERATION_GAP + 10));
        records.extend([rec(0, 2), rec(3, 2)]);
        records.extend(filler(9000, GENERATION_GAP + 10));
        let a = SpatialAnalysis::of_records(&records);
        assert_eq!(a.predicted_misses, 0);
    }

    #[test]
    fn empty_trace() {
        let a = SpatialAnalysis::of_records::<MissClass>(&[]);
        assert_eq!(a.generations, 0);
        assert_eq!(a.prediction_rate(), 0.0);
        assert!(!a.to_string().is_empty());
    }

    #[test]
    fn strided_scan_has_dense_recurring_patterns() {
        // A full-region scan repeated with the same trigger: dense pattern,
        // predicted on recurrence.
        let scan: Vec<MissRecord<MissClass>> = (0..REGION_BLOCKS).map(|b| rec(b, 7)).collect();
        let mut records = scan.clone();
        records.extend(filler(1, GENERATION_GAP + 10));
        records.extend(scan);
        records.extend(filler(9000, GENERATION_GAP + 10));
        let a = SpatialAnalysis::of_records(&records);
        assert!(a.predicted >= 1);
        // The predicted generation covers the whole dense region (the
        // single-block fillers dilute the overall mean density).
        assert!(a.predicted_misses >= REGION_BLOCKS);
    }
}
