//! Distribution helpers for Figure 4: a weighted stream-length CDF and a
//! log-decade-binned reuse-distance PDF.

use crate::engine::frac;
use std::collections::BTreeMap;

/// Reuse distances beyond this are dropped, as in the paper ("such
/// distances ... are unlikely to be exploited by prefetching").
pub const REUSE_TRUNCATION: u64 = 10_000_000;

/// A cumulative distribution of stream lengths, weighted by each length's
/// total miss contribution (Figure 4, left).
#[derive(Debug, Clone, Default)]
pub struct LengthCdf {
    weights: BTreeMap<u64, u64>,
    total: u64,
}

impl LengthCdf {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` misses contributed by streams of length `len`.
    pub fn add(&mut self, len: u64, weight: u64) {
        *self.weights.entry(len).or_insert(0) += weight;
        self.total += weight;
    }

    /// Total weighted misses.
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// The cumulative fraction of weight at lengths `<= len`.
    pub fn cumulative_at(&self, len: u64) -> f64 {
        let below: u64 = self.weights.range(..=len).map(|(_, w)| *w).sum();
        frac(below, self.total)
    }

    /// The weighted percentile length: smallest length with cumulative
    /// fraction `>= q` (`0.0 < q <= 1.0`). `None` if empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (&len, &w) in &self.weights {
            acc += w;
            if acc >= target {
                return Some(len);
            }
        }
        self.weights.keys().next_back().copied()
    }

    /// The weighted median stream length (the paper's headline statistic).
    pub fn median(&self) -> Option<u64> {
        self.percentile(0.5)
    }

    /// CDF samples at logarithmically spaced lengths `1, 2, 5, 10, 20,
    /// 50, ...` up to the maximum observed length, as `(length,
    /// cumulative_fraction)` pairs.
    pub fn log_samples(&self) -> Vec<(u64, f64)> {
        let Some(&max) = self.weights.keys().next_back() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut decade = 1u64;
        'outer: loop {
            for m in [1, 2, 5] {
                let x = decade * m;
                out.push((x, self.cumulative_at(x)));
                if x >= max {
                    break 'outer;
                }
            }
            decade *= 10;
        }
        out
    }

    /// Maximum observed stream length.
    pub fn max_len(&self) -> Option<u64> {
        self.weights.keys().next_back().copied()
    }
}

/// A probability density over reuse distances, log-decade binned (Figure
/// 4, right: bins 1, 10, 10^2, ..., 10^7).
#[derive(Debug, Clone, Default)]
pub struct ReuseDistancePdf {
    /// `bins[k]` holds weight for distances in `[10^k, 10^(k+1))`;
    /// distance 0 lands in bin 0.
    bins: [u64; 8],
    total: u64,
    truncated: u64,
}

impl ReuseDistancePdf {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` misses whose stream recurred at `distance`.
    /// Distances at or beyond [`REUSE_TRUNCATION`] are counted as
    /// truncated and excluded from the density.
    pub fn add(&mut self, distance: u64, weight: u64) {
        if distance >= REUSE_TRUNCATION {
            self.truncated += weight;
            return;
        }
        let bin = if distance == 0 {
            0
        } else {
            (distance as f64).log10().floor() as usize
        };
        self.bins[bin.min(7)] += weight;
        self.total += weight;
    }

    /// Total (non-truncated) weight.
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// Weight dropped by truncation.
    pub fn truncated_weight(&self) -> u64 {
        self.truncated
    }

    /// The density as `(decade_lower_bound, fraction)` pairs: `(1, f0)`,
    /// `(10, f1)`, ..., `(10^7, f7)`.
    pub fn decades(&self) -> Vec<(u64, f64)> {
        (0..8)
            .map(|k| (10u64.pow(k as u32), frac(self.bins[k], self.total)))
            .collect()
    }

    /// The decade (lower bound) holding the most weight, if any.
    pub fn mode_decade(&self) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let (k, _) = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|&(_, w)| *w)
            .expect("8 bins");
        Some(10u64.pow(k as u32))
    }

    /// Fraction of weight at distances below `bound`.
    ///
    /// `bound` is rounded down to a decade boundary.
    pub fn fraction_below(&self, bound: u64) -> f64 {
        let cutoff = if bound == 0 {
            0
        } else {
            ((bound as f64).log10().floor() as usize).min(8)
        };
        let below: u64 = self.bins[..cutoff].iter().sum();
        frac(below, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_percentiles() {
        let mut c = LengthCdf::new();
        c.add(2, 10);
        c.add(8, 10);
        c.add(100, 10);
        assert_eq!(c.total_weight(), 30);
        assert_eq!(c.median(), Some(8));
        assert_eq!(c.percentile(0.9), Some(100));
        assert_eq!(c.percentile(0.1), Some(2));
        assert!((c.cumulative_at(8) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_empty() {
        let c = LengthCdf::new();
        assert_eq!(c.median(), None);
        assert_eq!(c.cumulative_at(10), 0.0);
        assert!(c.log_samples().is_empty());
    }

    #[test]
    fn cdf_log_samples_cover_max() {
        let mut c = LengthCdf::new();
        c.add(3, 1);
        c.add(40, 1);
        let samples = c.log_samples();
        assert_eq!(samples.first().unwrap().0, 1);
        assert!(samples.last().unwrap().0 >= 40);
        assert!((samples.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_binning() {
        let mut p = ReuseDistancePdf::new();
        p.add(0, 1); // bin 0
        p.add(5, 1); // bin 0
        p.add(10, 1); // bin 1
        p.add(99, 1); // bin 1
        p.add(1_000_000, 4); // bin 6
        let d = p.decades();
        assert!((d[0].1 - 0.25).abs() < 1e-12);
        assert!((d[1].1 - 0.25).abs() < 1e-12);
        assert!((d[6].1 - 0.5).abs() < 1e-12);
        assert_eq!(p.mode_decade(), Some(1_000_000));
    }

    #[test]
    fn pdf_truncation() {
        let mut p = ReuseDistancePdf::new();
        p.add(REUSE_TRUNCATION, 5);
        p.add(REUSE_TRUNCATION * 10, 1);
        p.add(3, 1);
        assert_eq!(p.truncated_weight(), 6);
        assert_eq!(p.total_weight(), 1);
    }

    #[test]
    fn pdf_fraction_below() {
        let mut p = ReuseDistancePdf::new();
        p.add(5, 1); // decade 1 (bin 0)
        p.add(500, 1); // bin 2
        p.add(50_000, 2); // bin 4
        assert!((p.fraction_below(1_000) - 0.5).abs() < 1e-12);
        assert!((p.fraction_below(10) - 0.25).abs() < 1e-12);
        assert_eq!(p.fraction_below(1), 0.0);
    }
}
