//! Engine differential property test: chunked incremental feeding with
//! interleaved snapshots must be bit-identical to one batch feed.
//!
//! This is the property that lets the batch pipeline, the online
//! server, and the offline comparator all share one
//! [`AnalysisEngine`]: a SEQUITUR grammar snapshot over an ingest
//! prefix equals the batch grammar of that prefix, the root walk is a
//! pure function of (grammar, records), and the engine's version-keyed
//! memoization may never change an answer — only skip recomputing it.

use tempstream_core::engine::{AnalysisEngine, CoverageCounts, EngineConfig, StreamCounts};
use tempstream_core::report::StrideJointReport;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::rng::SplitMix64;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

fn seeded_records(seed: u64, n: usize, block_universe: u64) -> Vec<MissRecord<MissClass>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| MissRecord {
            block: Block::new(rng.next_u64() % block_universe),
            cpu: CpuId::new((rng.next_u64() % 4) as u32),
            thread: ThreadId::new((rng.next_u64() % 8) as u32),
            function: FunctionId::new((rng.next_u64() % 13) as u32),
            class: MissClass::Replacement,
        })
        .collect()
}

/// Everything an engine can answer, captured at one version.
#[derive(Debug, PartialEq)]
struct FullSnapshot {
    version: u64,
    streams: StreamCounts,
    coverage: CoverageCounts,
    joint: StrideJointReport,
    top_origins: Vec<(u32, u64)>,
    overflow: u64,
}

fn snapshot(engine: &mut AnalysisEngine<MissClass>) -> FullSnapshot {
    FullSnapshot {
        version: engine.version(),
        streams: engine.stream_counts(),
        coverage: engine.coverage(),
        joint: engine.joint_breakdown(),
        top_origins: engine.origin_table().top_n(8),
        overflow: engine.overflow(),
    }
}

/// Feeds `records` in `k` chunks, snapshotting after every chunk
/// (exercising the memoized accessors mid-stream), and returns the
/// final snapshot.
fn chunked_feed(records: &[MissRecord<MissClass>], k: usize, config: EngineConfig) -> FullSnapshot {
    let mut engine: AnalysisEngine<MissClass> = AnalysisEngine::new(config);
    let chunk = records.len().div_ceil(k).max(1);
    for c in records.chunks(chunk) {
        engine.push_record(&c[0]);
        engine.push_records(&c[1..]);
        // Mid-stream snapshots must not perturb later answers.
        let s = snapshot(&mut engine);
        assert_eq!(s.version, engine.ingested(), "snapshot at the cut");
        // A second read of the quiet engine is a pure cache hit.
        let walks = engine.grammar_walks();
        assert_eq!(snapshot(&mut engine), s, "idempotent snapshot");
        assert_eq!(engine.grammar_walks(), walks, "quiet re-read walks nothing");
    }
    snapshot(&mut engine)
}

fn batch_feed(records: &[MissRecord<MissClass>], config: EngineConfig) -> FullSnapshot {
    let mut engine: AnalysisEngine<MissClass> = AnalysisEngine::new(config);
    engine.push_records(records);
    snapshot(&mut engine)
}

#[test]
fn chunked_feeds_match_batch_feed_at_k_1_2_7() {
    for (seed, n, universe) in [(0xd1ff_0001u64, 700, 61), (0xd1ff_0002, 1100, 199)] {
        let records = seeded_records(seed, n, universe);
        let config = EngineConfig::default();
        let want = batch_feed(&records, config);
        for k in [1usize, 2, 7] {
            assert_eq!(
                chunked_feed(&records, k, config),
                want,
                "seed={seed:#x} k={k}"
            );
        }
    }
}

#[test]
fn chunked_feeds_match_batch_under_retention_cap() {
    // The retention cap must trip at the same record regardless of
    // chunking: grammar frozen, coverage/origins still counting.
    let records = seeded_records(0xd1ff_0003, 900, 47);
    let config = EngineConfig {
        max_retained: 256,
        ..EngineConfig::default()
    };
    let want = batch_feed(&records, config);
    assert_eq!(want.overflow, (900 - 256) as u64);
    for k in [2usize, 7] {
        assert_eq!(chunked_feed(&records, k, config), want, "k={k}");
    }
}

#[test]
fn chunked_snapshots_equal_batch_prefix_snapshots() {
    // Stronger than final-state equality: *every* mid-stream snapshot
    // equals a fresh batch feed of exactly that prefix.
    let records = seeded_records(0xd1ff_0004, 420, 31);
    let config = EngineConfig::default();
    let mut engine: AnalysisEngine<MissClass> = AnalysisEngine::new(config);
    let mut fed = 0usize;
    for cut in [1usize, 2, 59, 60, 240, 420] {
        engine.push_records(&records[fed..cut]);
        fed = cut;
        assert_eq!(
            snapshot(&mut engine),
            batch_feed(&records[..cut], config),
            "prefix {cut}"
        );
    }
}

#[test]
fn degenerate_empty_trace() {
    let config = EngineConfig::default();
    let mut engine: AnalysisEngine<MissClass> = AnalysisEngine::new(config);
    let s = snapshot(&mut engine);
    assert_eq!(s.version, 0);
    assert_eq!(s.streams, StreamCounts::default());
    assert_eq!(s.coverage, CoverageCounts::default());
    assert_eq!(s.joint.total(), 0);
    assert!(s.top_origins.is_empty());
    assert_eq!(s, batch_feed(&[], config));
    // Pushing an empty batch is a no-op at the same version.
    engine.push_records(&[]);
    assert_eq!(snapshot(&mut engine), s);
}

#[test]
fn degenerate_single_miss() {
    let records = seeded_records(0xd1ff_0005, 1, 7);
    let config = EngineConfig::default();
    let want = batch_feed(&records, config);
    assert_eq!(want.streams.total(), 1);
    assert_eq!(want.streams.non_repetitive, 1, "one miss cannot recur");
    assert_eq!(want.streams.distinct_streams, 0);
    for k in [1usize, 2, 7] {
        assert_eq!(chunked_feed(&records, k, config), want, "k={k}");
    }
}

#[test]
fn degenerate_identical_addresses() {
    // 64 misses to one block: maximally repetitive, single origin.
    let records: Vec<MissRecord<MissClass>> = (0..64)
        .map(|i| MissRecord {
            block: Block::new(42),
            cpu: CpuId::new(i % 2),
            thread: ThreadId::new(0),
            function: FunctionId::new(7),
            class: MissClass::Replacement,
        })
        .collect();
    let config = EngineConfig::default();
    let want = batch_feed(&records, config);
    assert_eq!(want.streams.total(), 64);
    assert_eq!(
        want.streams.non_repetitive + want.streams.new_stream + want.streams.recurring_stream,
        64
    );
    assert_eq!(want.top_origins, vec![(7, 64)]);
    for k in [1usize, 2, 7] {
        assert_eq!(chunked_feed(&records, k, config), want, "k={k}");
    }
}

#[test]
fn engine_snapshot_matches_batch_stages() {
    // The engine's answers against the batch pipeline's stage
    // functions — the cross-consumer identity the server's loopback
    // tests rely on transitively.
    let records = seeded_records(0xd1ff_0006, 800, 89);
    let num_cpus = records.iter().map(|r| r.cpu.raw()).max().unwrap_or(0) + 1;
    let mut engine: AnalysisEngine<MissClass> = AnalysisEngine::new(EngineConfig::default());
    engine.push_records(&records);

    let partial = tempstream_core::stages::analyze_streams(&records, num_cpus);
    let counts = engine.stream_counts();
    assert_eq!(
        counts.non_repetitive,
        partial.stream_fraction.non_repetitive
    );
    assert_eq!(counts.new_stream, partial.stream_fraction.new_stream);
    assert_eq!(
        counts.recurring_stream,
        partial.stream_fraction.recurring_stream
    );
    assert_eq!(counts.distinct_streams, partial.distinct_streams as u64);

    let flags = tempstream_core::stages::analyze_strides(&records, num_cpus);
    let want_joint = tempstream_core::stages::joint_breakdown(&partial.labels, &flags);
    assert_eq!(engine.joint_breakdown(), want_joint);

    let analysis = engine.stream_analysis();
    assert_eq!(analysis.labels(), partial.labels.as_slice());
}
