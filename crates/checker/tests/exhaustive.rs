//! Exhaustive verification of the production protocol tables, plus
//! mutation tests proving the checker detects broken tables.
//!
//! This is the test-harness entry of the acceptance criteria: `cargo
//! test -p tempstream-checker` enumerates the full MSI and MOSI state
//! spaces for 2–4 caches and asserts every invariant class. The
//! mutation tests guard the checker itself: each plants a classic
//! protocol bug (lost invalidation, skipped writeback, stale L2 copy,
//! missing row, unreachable state) and asserts the right invariant
//! class flags it with a short witness.

use tempstream_checker::{
    check_all, check_mosi, check_msi, explore, CheckReport, MosiModel, MsiModel,
};
use tempstream_coherence::protocol::{
    Action, Event, MosiState, MsiState, ProtocolSpec, Transition, MOSI, MSI,
};

#[test]
fn production_tables_pass_every_invariant() {
    let reports = check_all();
    assert_eq!(reports.len(), 6, "MSI and MOSI at N = 2, 3, 4");
    for r in &reports {
        assert!(r.passed(), "{r}");
        assert!(
            r.configs > 1 && r.steps > 1,
            "exploration actually ran: {r}"
        );
    }
}

fn reports() -> Vec<CheckReport> {
    check_all()
}

#[test]
fn swmr_holds_exhaustively() {
    for r in reports() {
        assert!(r.violations.iter().all(|v| v.invariant != "SWMR"), "{r}");
    }
}

#[test]
fn at_most_one_owner_holds_exhaustively() {
    for r in reports() {
        assert!(
            r.violations.iter().all(|v| v.invariant != "single-owner"),
            "{r}"
        );
    }
}

#[test]
fn level_consistency_holds_exhaustively() {
    for r in reports() {
        assert!(
            r.violations
                .iter()
                .all(|v| v.invariant != "level-consistency"),
            "{r}"
        );
    }
}

#[test]
fn no_write_is_ever_lost() {
    for r in reports() {
        assert!(
            r.violations
                .iter()
                .all(|v| v.invariant != "data-availability"),
            "{r}"
        );
    }
}

#[test]
fn coverage_is_total_with_no_dead_rows_or_states() {
    for r in reports() {
        assert!(r.totality_gaps.is_empty(), "{r}");
        assert!(r.dead_transitions.is_empty(), "{r}");
        assert!(r.unreachable_states.is_empty(), "{r}");
        assert!(
            r.violations
                .iter()
                .all(|v| v.invariant != "impossible-reached" && v.invariant != "stuck-state"),
            "{r}"
        );
    }
}

#[test]
fn state_spaces_have_the_expected_scale() {
    // Sanity-check the models are cross products, not single chains: the
    // 4-core MOSI space must dwarf the 2-core one.
    let small = check_mosi(2).configs;
    let large = check_mosi(4).configs;
    assert!(large > small * 4, "MOSI configs: {small} vs {large}");
    assert!(check_msi(4).configs > check_msi(2).configs);
}

// --- mutation tests: the checker must catch classic protocol bugs ---

fn patched_mosi(
    name: &'static str,
    patch: impl Fn(&mut Vec<Transition<MosiState>>),
) -> &'static ProtocolSpec<MosiState> {
    let mut transitions: Vec<_> = MOSI.transitions.to_vec();
    patch(&mut transitions);
    Box::leak(Box::new(ProtocolSpec {
        name,
        states: MOSI.states,
        initial: MOSI.initial,
        transitions: Box::leak(transitions.into_boxed_slice()),
        impossible: MOSI.impossible,
    }))
}

fn patched_msi(
    name: &'static str,
    patch: impl Fn(&mut Vec<Transition<MsiState>>),
) -> &'static ProtocolSpec<MsiState> {
    let mut transitions: Vec<_> = MSI.transitions.to_vec();
    patch(&mut transitions);
    Box::leak(Box::new(ProtocolSpec {
        name,
        states: MSI.states,
        initial: MSI.initial,
        transitions: Box::leak(transitions.into_boxed_slice()),
        impossible: MSI.impossible,
    }))
}

fn find_violation<'a>(
    report: &'a CheckReport,
    invariant: &str,
) -> &'a tempstream_checker::Violation {
    report
        .violations
        .iter()
        .find(|v| v.invariant == invariant)
        .unwrap_or_else(|| panic!("expected a {invariant} violation, got: {report}"))
}

#[test]
fn lost_invalidation_breaks_swmr() {
    // Bug: a write no longer invalidates Shared peers.
    let spec = patched_mosi("MOSI-lost-invalidation", |ts| {
        for t in ts {
            if t.from == MosiState::S && t.event == Event::RemoteWrite {
                t.to = MosiState::S;
                t.action = Action::None;
            }
        }
    });
    let report = explore(&MosiModel::with_spec(spec, 2));
    let v = find_violation(&report, "SWMR");
    // BFS found a minimal witness: one read to create the sharer, one
    // write to (fail to) invalidate it.
    assert!(v.witness.len() <= 3, "witness not minimal: {v}");
}

#[test]
fn skipped_writeback_loses_data() {
    // Bug: a dirty eviction silently drops the line instead of writing
    // it back.
    let spec = patched_msi("MSI-silent-dirty-evict", |ts| {
        for t in ts {
            if t.from == MsiState::M && t.event == Event::Evict {
                t.action = Action::None;
            }
        }
    });
    let report = explore(&MsiModel::with_spec(spec, 2));
    let v = find_violation(&report, "data-availability");
    assert!(v.witness.len() <= 2, "witness not minimal: {v}");
}

#[test]
fn stale_l2_copy_breaks_level_consistency() {
    // Bug: a write upgrade forgets to invalidate the shared L2's copy.
    let spec = patched_mosi("MOSI-stale-l2", |ts| {
        for t in ts {
            if t.from == MosiState::S && t.event == Event::LocalWrite {
                t.action = Action::Hit;
            }
        }
    });
    let report = explore(&MosiModel::with_spec(spec, 2));
    find_violation(&report, "level-consistency");
}

#[test]
fn missing_row_is_a_totality_gap() {
    // Bug: the O + LocalRead row was dropped entirely.
    let spec = patched_mosi("MOSI-missing-row", |ts| {
        ts.retain(|t| !(t.from == MosiState::O && t.event == Event::LocalRead));
    });
    let report = explore(&MosiModel::with_spec(spec, 2));
    assert!(!report.totality_gaps.is_empty(), "{report}");
    assert!(!report.passed());
}

#[test]
fn unreachable_state_and_dead_rows_are_flagged() {
    // Bug: a snooped read invalidates the Modified owner instead of
    // downgrading it, making Owned unreachable and its rows dead.
    let spec = patched_mosi("MOSI-no-owned", |ts| {
        for t in ts {
            if t.from == MosiState::M && t.event == Event::RemoteRead {
                t.to = MosiState::I;
                t.action = Action::SupplyToPeer;
            }
        }
    });
    let report = explore(&MosiModel::with_spec(spec, 3));
    assert!(
        report.unreachable_states.contains(&"O".to_string()),
        "{report}"
    );
    assert!(!report.dead_transitions.is_empty(), "{report}");
}
