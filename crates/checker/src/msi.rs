//! The multi-chip MSI model: one block across N private node hierarchies
//! plus a ghost bit tracking whether backing memory holds the latest
//! value.
//!
//! Ghost semantics mirror the memory-system effects the [`Action`]s
//! demand: a write makes memory stale; a Modified line supplies-and-
//! writes-back on a remote read (so Shared copies are always memory-
//! consistent); a dirty eviction writes back; a DMA/copyout write
//! refreshes memory while invalidating every cached copy.

use crate::bfs::{
    apply_io_vec, apply_vec, spec_rows, spec_state_names, totality_gaps, Model, Step,
};
use tempstream_coherence::protocol::{Action, Event, MsiState, ProtocolSpec, ProtocolState, MSI};

/// One global configuration of the MSI model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MsiConfig {
    /// Per-node protocol state of the block.
    pub caches: Vec<MsiState>,
    /// Whether backing memory holds the latest value of the block.
    pub memory_current: bool,
}

/// Exhaustive model of the [`MSI`] table (or a variant of it) for a
/// fixed number of nodes.
pub struct MsiModel {
    spec: &'static ProtocolSpec<MsiState>,
    agents: u32,
}

impl MsiModel {
    /// Models the production [`MSI`] table with `agents` nodes.
    pub fn new(agents: u32) -> Self {
        Self::with_spec(&MSI, agents)
    }

    /// Models an arbitrary MSI-shaped table — used by the checker's own
    /// tests to prove that broken tables are detected.
    pub fn with_spec(spec: &'static ProtocolSpec<MsiState>, agents: u32) -> Self {
        assert!((2..=8).contains(&agents), "model needs 2..=8 agents");
        MsiModel { spec, agents }
    }
}

impl Model for MsiModel {
    type Config = MsiConfig;

    fn protocol_name(&self) -> &'static str {
        self.spec.name
    }

    fn agents(&self) -> u32 {
        self.agents
    }

    fn initial(&self) -> MsiConfig {
        MsiConfig {
            caches: vec![self.spec.initial; self.agents as usize],
            memory_current: true,
        }
    }

    fn steps(&self, cfg: &MsiConfig) -> Vec<Step<MsiConfig>> {
        let mut steps = Vec::new();
        for i in 0..self.agents as usize {
            if let Ok(out) = apply_vec(self.spec, &cfg.caches, i, Event::LocalRead) {
                // A Modified peer supplies the line and writes it back
                // while downgrading, refreshing memory.
                let write_back = out.supplier().is_some();
                steps.push(Step {
                    label: format!("Read({i})"),
                    next: MsiConfig {
                        caches: out.next,
                        memory_current: cfg.memory_current || write_back,
                    },
                    fired: out.fired,
                });
            }
            if let Ok(out) = apply_vec(self.spec, &cfg.caches, i, Event::LocalWrite) {
                steps.push(Step {
                    label: format!("Write({i})"),
                    next: MsiConfig {
                        caches: out.next,
                        memory_current: false,
                    },
                    fired: out.fired,
                });
            }
            // Victimization is only meaningful for a resident line.
            if cfg.caches[i].is_valid() {
                if let Ok(out) = apply_vec(self.spec, &cfg.caches, i, Event::Evict) {
                    let write_back = out.local.action == Action::WritebackVictim;
                    steps.push(Step {
                        label: format!("Evict({i})"),
                        next: MsiConfig {
                            caches: out.next,
                            memory_current: cfg.memory_current || write_back,
                        },
                        fired: out.fired,
                    });
                }
            }
        }
        if let Ok((next, fired)) = apply_io_vec(self.spec, &cfg.caches) {
            // The device deposits fresh data in memory.
            steps.push(Step {
                label: "IoInvalidate".into(),
                next: MsiConfig {
                    caches: next,
                    memory_current: true,
                },
                fired,
            });
        }
        steps
    }

    fn violations(&self, cfg: &MsiConfig) -> Vec<(String, String)> {
        let mut v = Vec::new();
        let owners = cfg.caches.iter().filter(|s| s.is_owner()).count();
        for (i, s) in cfg.caches.iter().enumerate() {
            if s.is_writable() {
                for (j, t) in cfg.caches.iter().enumerate() {
                    if i != j && t.is_valid() {
                        v.push((
                            "SWMR".into(),
                            format!("node {i} is {s:?} while node {j} holds {t:?}"),
                        ));
                    }
                }
            }
        }
        if owners > 1 {
            v.push((
                "single-owner".into(),
                format!("{owners} nodes own the block simultaneously"),
            ));
        }
        // Shared copies must be memory-consistent (M downgrades write
        // back), otherwise a fill from memory returns stale data.
        if !cfg.memory_current && cfg.caches.iter().any(|s| s.is_valid() && !s.is_owner()) {
            v.push((
                "level-consistency".into(),
                "a Shared copy coexists with stale memory".into(),
            ));
        }
        // The latest value must live somewhere: in a cache or in memory.
        if !cfg.memory_current && cfg.caches.iter().all(|s| !s.is_valid()) {
            v.push((
                "data-availability".into(),
                "every copy is gone and memory is stale: the last write is lost".into(),
            ));
        }
        // Any enabled event whose lookup fails means a reachable
        // impossible pair or a table hole.
        for i in 0..self.agents as usize {
            for event in [Event::LocalRead, Event::LocalWrite] {
                if let Err(e) = apply_vec(self.spec, &cfg.caches, i, event) {
                    v.push(("impossible-reached".into(), e));
                }
            }
            if cfg.caches[i].is_valid() {
                if let Err(e) = apply_vec(self.spec, &cfg.caches, i, Event::Evict) {
                    v.push(("impossible-reached".into(), e));
                }
            }
        }
        if let Err(e) = apply_io_vec(self.spec, &cfg.caches) {
            v.push(("impossible-reached".into(), e));
        }
        v
    }

    fn state_indices(&self, cfg: &MsiConfig) -> Vec<usize> {
        cfg.caches.iter().map(|s| s.index()).collect()
    }

    fn table_rows(&self) -> Vec<((usize, Event), String)> {
        spec_rows(self.spec)
    }

    fn state_names(&self) -> Vec<String> {
        spec_state_names(self.spec)
    }

    fn totality_gaps(&self) -> Vec<String> {
        totality_gaps(self.spec)
    }
}
