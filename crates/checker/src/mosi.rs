//! The single-chip MOSI model: one block across N core L1s plus ghost
//! state for the shared, non-inclusive L2 and backing memory.
//!
//! Ghost semantics mirror the simulator's victim path: L1 victims —
//! clean ([`Action::InstallVictim`]) or dirty ([`Action::WritebackVictim`])
//! — are installed into the L2; a write invalidates any L2 copy
//! ([`Action::InvalidateSharers`]); the L2 may evict its copy at any
//! time, writing back when it is the last current copy on chip; DMA and
//! copyout writes refresh memory while invalidating every on-chip copy.

use crate::bfs::{
    apply_io_vec, apply_vec, spec_rows, spec_state_names, totality_gaps, Model, Step,
};
use tempstream_coherence::protocol::{Action, Event, MosiState, ProtocolSpec, ProtocolState, MOSI};

/// Ghost state of the shared L2's copy of the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L2Ghost {
    /// The L2 holds no copy.
    Absent,
    /// The L2 holds the latest value.
    Current,
    /// The L2 holds an outdated value — always an invariant violation;
    /// the model only constructs it when a table fails to invalidate the
    /// L2 on a write, precisely so the checker can catch that bug.
    Stale,
}

/// One global configuration of the MOSI model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MosiConfig {
    /// Per-core L1 protocol state of the block.
    pub caches: Vec<MosiState>,
    /// Ghost state of the shared L2's copy.
    pub l2: L2Ghost,
    /// Whether backing memory holds the latest value.
    pub memory_current: bool,
}

impl MosiConfig {
    fn owner(&self) -> Option<usize> {
        self.caches.iter().position(|s| s.is_owner())
    }
}

/// Exhaustive model of the [`MOSI`] table (or a variant of it) for a
/// fixed number of cores.
pub struct MosiModel {
    spec: &'static ProtocolSpec<MosiState>,
    agents: u32,
}

impl MosiModel {
    /// Models the production [`MOSI`] table with `agents` cores.
    pub fn new(agents: u32) -> Self {
        Self::with_spec(&MOSI, agents)
    }

    /// Models an arbitrary MOSI-shaped table — used by the checker's own
    /// tests to prove that broken tables are detected.
    pub fn with_spec(spec: &'static ProtocolSpec<MosiState>, agents: u32) -> Self {
        assert!((2..=8).contains(&agents), "model needs 2..=8 agents");
        MosiModel { spec, agents }
    }
}

impl Model for MosiModel {
    type Config = MosiConfig;

    fn protocol_name(&self) -> &'static str {
        self.spec.name
    }

    fn agents(&self) -> u32 {
        self.agents
    }

    fn initial(&self) -> MosiConfig {
        MosiConfig {
            caches: vec![self.spec.initial; self.agents as usize],
            l2: L2Ghost::Absent,
            memory_current: true,
        }
    }

    fn steps(&self, cfg: &MosiConfig) -> Vec<Step<MosiConfig>> {
        let mut steps = Vec::new();
        for i in 0..self.agents as usize {
            if let Ok(out) = apply_vec(self.spec, &cfg.caches, i, Event::LocalRead) {
                // A fill is served on chip when an owner supplies it, the
                // L2 holds a copy, or a clean peer L1 has one; only
                // otherwise does the line come from memory, and the fill
                // also installs the block in the shared L2.
                let on_chip = out.supplier().is_some()
                    || cfg.l2 != L2Ghost::Absent
                    || cfg
                        .caches
                        .iter()
                        .enumerate()
                        .any(|(j, s)| j != i && s.is_valid());
                let off_chip_fill = out.local.action == Action::Fill && !on_chip;
                steps.push(Step {
                    label: format!("Read({i})"),
                    next: MosiConfig {
                        caches: out.next,
                        l2: if off_chip_fill {
                            L2Ghost::Current
                        } else {
                            cfg.l2
                        },
                        memory_current: cfg.memory_current,
                    },
                    fired: out.fired,
                });
            }
            if let Ok(out) = apply_vec(self.spec, &cfg.caches, i, Event::LocalWrite) {
                // A correct table invalidates the L2 copy on a write; a
                // broken one leaves it behind, now stale.
                let l2 =
                    if out.local.action == Action::InvalidateSharers || cfg.l2 == L2Ghost::Absent {
                        L2Ghost::Absent
                    } else {
                        L2Ghost::Stale
                    };
                steps.push(Step {
                    label: format!("Write({i})"),
                    next: MosiConfig {
                        caches: out.next,
                        l2,
                        memory_current: false,
                    },
                    fired: out.fired,
                });
            }
            if cfg.caches[i].is_valid() {
                if let Ok(out) = apply_vec(self.spec, &cfg.caches, i, Event::Evict) {
                    // Victims land in the non-inclusive L2: dirty ones by
                    // writeback, clean ones by victim install. Any valid
                    // copy holds the latest value (writes invalidate all
                    // sharers), so the installed copy is current.
                    let l2 = match out.local.action {
                        Action::WritebackVictim | Action::InstallVictim => L2Ghost::Current,
                        _ => cfg.l2,
                    };
                    steps.push(Step {
                        label: format!("Evict({i})"),
                        next: MosiConfig {
                            caches: out.next,
                            l2,
                            memory_current: cfg.memory_current,
                        },
                        fired: out.fired,
                    });
                }
            }
        }
        if cfg.l2 != L2Ghost::Absent {
            // The shared L2 may victimize its copy at any time; holding
            // the last current copy on chip, it writes back to memory.
            let write_back = cfg.l2 == L2Ghost::Current && cfg.owner().is_none();
            steps.push(Step {
                label: "L2Evict".into(),
                next: MosiConfig {
                    caches: cfg.caches.clone(),
                    l2: L2Ghost::Absent,
                    memory_current: cfg.memory_current || write_back,
                },
                fired: Vec::new(),
            });
        }
        if let Ok((next, fired)) = apply_io_vec(self.spec, &cfg.caches) {
            steps.push(Step {
                label: "IoInvalidate".into(),
                next: MosiConfig {
                    caches: next,
                    l2: L2Ghost::Absent,
                    memory_current: true,
                },
                fired,
            });
        }
        steps
    }

    fn violations(&self, cfg: &MosiConfig) -> Vec<(String, String)> {
        let mut v = Vec::new();
        let owners = cfg.caches.iter().filter(|s| s.is_owner()).count();
        for (i, s) in cfg.caches.iter().enumerate() {
            if s.is_writable() {
                for (j, t) in cfg.caches.iter().enumerate() {
                    if i != j && t.is_valid() {
                        v.push((
                            "SWMR".into(),
                            format!("core {i} is {s:?} while core {j} holds {t:?}"),
                        ));
                    }
                }
                if cfg.l2 != L2Ghost::Absent {
                    v.push((
                        "SWMR".into(),
                        format!("core {i} is {s:?} while the L2 holds a copy"),
                    ));
                }
            }
        }
        if owners > 1 {
            v.push((
                "single-owner".into(),
                format!("{owners} cores own the block simultaneously"),
            ));
        }
        // Non-inclusion consistency: the L2 must never hold an outdated
        // copy (a write leaving the L2 copy behind would let a later read
        // fill stale data from it).
        if cfg.l2 == L2Ghost::Stale {
            v.push((
                "level-consistency".into(),
                "the shared L2 holds a stale copy after a write".into(),
            ));
        }
        // The latest value must live somewhere: an L1, the L2, or memory.
        if !cfg.memory_current
            && cfg.l2 != L2Ghost::Current
            && cfg.caches.iter().all(|s| !s.is_valid())
        {
            v.push((
                "data-availability".into(),
                "every copy is gone and memory is stale: the last write is lost".into(),
            ));
        }
        for i in 0..self.agents as usize {
            for event in [Event::LocalRead, Event::LocalWrite] {
                if let Err(e) = apply_vec(self.spec, &cfg.caches, i, event) {
                    v.push(("impossible-reached".into(), e));
                }
            }
            if cfg.caches[i].is_valid() {
                if let Err(e) = apply_vec(self.spec, &cfg.caches, i, Event::Evict) {
                    v.push(("impossible-reached".into(), e));
                }
            }
        }
        if let Err(e) = apply_io_vec(self.spec, &cfg.caches) {
            v.push(("impossible-reached".into(), e));
        }
        v
    }

    fn state_indices(&self, cfg: &MosiConfig) -> Vec<usize> {
        cfg.caches.iter().map(|s| s.index()).collect()
    }

    fn table_rows(&self) -> Vec<((usize, Event), String)> {
        spec_rows(self.spec)
    }

    fn state_names(&self) -> Vec<String> {
        spec_state_names(self.spec)
    }

    fn totality_gaps(&self) -> Vec<String> {
        totality_gaps(self.spec)
    }
}
