//! `lint-sources`: the sync-shim discipline gate.
//!
//! Scans the workspace (see [`tempstream_checker::lint`]) and exits
//! non-zero listing every direct `std::sync`/`std::thread` primitive
//! used in `crates/runtime/src/` outside the sync shim or in the
//! server library (`crates/serve/src/`, binaries exempt), every
//! `Instant::now` inside the pure pipeline stages, and every direct
//! `tempstream_sequitur` reference anywhere in the serve crate —
//! grammar access goes through `core::engine::AnalysisEngine`.
//!
//! ```text
//! lint-sources [REPO_ROOT]
//! ```
//!
//! `REPO_ROOT` defaults to the current directory (`ci.sh` runs it from
//! the workspace root).

use std::path::PathBuf;
use tempstream_checker::lint;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let findings = match lint::lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint-sources: cannot read tree at {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    if findings.is_empty() {
        println!(
            "lint-sources: clean (runtime and serve use the sync shim; \
             stages never read the clock; serve reaches the grammar \
             only through core::engine)"
        );
        return;
    }
    for finding in &findings {
        eprintln!("{finding}");
    }
    eprintln!(
        "lint-sources: {} finding(s). Route runtime synchronization through \
         `crate::sync` so the schedule checker can see it.",
        findings.len()
    );
    std::process::exit(1);
}
