//! CI gate: exhaustively model-checks every coherence-protocol table and
//! exits nonzero if any invariant fails.
//!
//! Run as `cargo run -p tempstream-checker --bin check-protocols` (wired
//! into `ci.sh`).

fn main() {
    let reports = tempstream_checker::check_all();
    let mut failed = false;
    for r in &reports {
        print!("{r}");
        failed |= !r.passed();
    }
    if failed {
        eprintln!("protocol verification FAILED");
        std::process::exit(1);
    }
    println!("all protocol tables verified");
}
