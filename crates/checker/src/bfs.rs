//! Generic breadth-first exploration of a protocol model's configuration
//! space, with minimal-witness reconstruction and table-coverage tracking.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::{CheckReport, Violation};
use tempstream_coherence::protocol::{Action, Event, ProtocolSpec, ProtocolState, Transition};

/// One enabled step out of a configuration.
pub struct Step<C> {
    /// Human-readable event label, used in witness traces.
    pub label: String,
    /// The configuration the step leads to.
    pub next: C,
    /// `(state index, event)` table rows the step exercised.
    pub fired: Vec<(usize, Event)>,
}

/// A finite protocol model the checker can explore exhaustively: the
/// per-cache states of one block across N caches plus the ghost state
/// (L2 presence / memory freshness) the data invariants are phrased over.
pub trait Model {
    /// One global configuration.
    type Config: Clone + Eq + Hash + fmt::Debug;

    /// Name of the protocol table under check.
    fn protocol_name(&self) -> &'static str;
    /// Number of caches in the model.
    fn agents(&self) -> u32;
    /// The cold-start configuration.
    fn initial(&self) -> Self::Config;
    /// Every enabled step out of `cfg`. Steps whose table lookups fail
    /// are omitted here and reported by [`violations`](Self::violations).
    fn steps(&self, cfg: &Self::Config) -> Vec<Step<Self::Config>>;
    /// Invariant violations of `cfg` itself, as `(invariant, detail)`.
    fn violations(&self, cfg: &Self::Config) -> Vec<(String, String)>;
    /// Indices of the per-cache states present in `cfg`.
    fn state_indices(&self, cfg: &Self::Config) -> Vec<usize>;
    /// Every transition row of the table: `(state index, event)` plus a
    /// display label.
    fn table_rows(&self) -> Vec<((usize, Event), String)>;
    /// Display names of the per-cache states, by index.
    fn state_names(&self) -> Vec<String>;
    /// Static totality gaps of the table (see [`totality_gaps`]).
    fn totality_gaps(&self) -> Vec<String>;
}

/// Outcome of applying one local event to a vector of per-cache states
/// by raw table lookup (independent of the simulators' `ProtocolEngine`,
/// so the checker cross-checks the tables, not the engine).
pub struct VecOutcome<S: 'static> {
    /// Successor per-cache states.
    pub next: Vec<S>,
    /// The acting cache's transition.
    pub local: &'static Transition<S>,
    /// Peer transitions, indexed by cache (`None` at the acting cache).
    pub remotes: Vec<Option<&'static Transition<S>>>,
    /// `(state index, event)` rows exercised.
    pub fired: Vec<(usize, Event)>,
}

impl<S: ProtocolState> VecOutcome<S> {
    /// The peer that supplied data (took a `SupplyToPeer` action), if any.
    pub fn supplier(&self) -> Option<usize> {
        self.remotes
            .iter()
            .position(|t| t.is_some_and(|t| t.action == Action::SupplyToPeer))
    }
}

fn lookup<S: ProtocolState>(
    spec: &'static ProtocolSpec<S>,
    state: S,
    event: Event,
) -> Result<&'static Transition<S>, String> {
    spec.transitions
        .iter()
        .find(|t| t.from == state && t.event == event)
        .ok_or_else(|| {
            if spec.impossible.contains(&(state, event)) {
                format!("({state:?}, {event:?}) is declared impossible but reachable")
            } else {
                format!("({state:?}, {event:?}) has no transition (table hole)")
            }
        })
}

/// Applies `event` at `agent` plus the induced remote event at every
/// other cache, purely functionally. Fails if any implied lookup hits a
/// declared-impossible pair or a table hole.
pub fn apply_vec<S: ProtocolState>(
    spec: &'static ProtocolSpec<S>,
    states: &[S],
    agent: usize,
    event: Event,
) -> Result<VecOutcome<S>, String> {
    let remote_event = match event {
        Event::LocalRead => Some(Event::RemoteRead),
        Event::LocalWrite => Some(Event::RemoteWrite),
        _ => None,
    };
    let local = lookup(spec, states[agent], event)?;
    let mut next = states.to_vec();
    let mut remotes: Vec<Option<&'static Transition<S>>> = vec![None; states.len()];
    let mut fired = vec![(states[agent].index(), event)];
    next[agent] = local.to;
    if let Some(re) = remote_event {
        for (i, s) in states.iter().enumerate() {
            if i == agent {
                continue;
            }
            let t = lookup(spec, *s, re)?;
            fired.push((s.index(), re));
            next[i] = t.to;
            remotes[i] = Some(t);
        }
    }
    Ok(VecOutcome {
        next,
        local,
        remotes,
        fired,
    })
}

/// Successor states plus the `(state index, event)` rows an
/// all-cache event exercised.
pub type IoOutcome<S> = (Vec<S>, Vec<(usize, Event)>);

/// Applies [`Event::IoInvalidate`] to every cache.
pub fn apply_io_vec<S: ProtocolState>(
    spec: &'static ProtocolSpec<S>,
    states: &[S],
) -> Result<IoOutcome<S>, String> {
    let mut next = states.to_vec();
    let mut fired = Vec::with_capacity(states.len());
    for (i, s) in states.iter().enumerate() {
        let t = lookup(spec, *s, Event::IoInvalidate)?;
        fired.push((s.index(), Event::IoInvalidate));
        next[i] = t.to;
    }
    Ok((next, fired))
}

/// Statically verifies table totality: every `(state, event)` pair must
/// be either an explicit transition or an explicit `impossible` entry,
/// never both and never neither. Returns one message per gap.
pub fn totality_gaps<S: ProtocolState>(spec: &'static ProtocolSpec<S>) -> Vec<String> {
    let mut gaps = Vec::new();
    for s in spec.states {
        for e in Event::ALL {
            let handled = spec
                .transitions
                .iter()
                .filter(|t| t.from == *s && t.event == e)
                .count();
            let impossible = spec.impossible.contains(&(*s, e));
            match (handled, impossible) {
                (1, false) | (0, true) => {}
                (0, false) => {
                    gaps.push(format!("({s:?}, {e:?}) is neither handled nor impossible"));
                }
                (1, true) => gaps.push(format!("({s:?}, {e:?}) is both handled and impossible")),
                (n, _) => gaps.push(format!("({s:?}, {e:?}) has {n} duplicate transitions")),
            }
        }
    }
    gaps
}

/// Rows and display labels of every transition in `spec`.
pub fn spec_rows<S: ProtocolState>(
    spec: &'static ProtocolSpec<S>,
) -> Vec<((usize, Event), String)> {
    spec.transitions
        .iter()
        .map(|t| {
            (
                (t.from.index(), t.event),
                format!("{:?} --{:?}--> {:?}", t.from, t.event, t.to),
            )
        })
        .collect()
}

/// Display names of every state in `spec`, by dense index.
pub fn spec_state_names<S: ProtocolState>(spec: &'static ProtocolSpec<S>) -> Vec<String> {
    spec.states.iter().map(|s| format!("{s:?}")).collect()
}

/// Upper bound on explored configurations; the protocol models are tiny
/// (≤ a few thousand configurations), so hitting this means a model bug.
const MAX_CONFIGS: usize = 1_000_000;

/// Exhaustively explores `model` from its initial configuration and
/// checks every invariant in every reachable configuration.
///
/// Violations carry a minimal witness trace (BFS order guarantees the
/// first hit is a shortest event sequence). Coverage is checked last:
/// transitions never fired and states never reached are reported as
/// table defects even when all safety invariants hold.
///
/// # Panics
///
/// Panics if the model exceeds [`MAX_CONFIGS`] configurations.
pub fn explore<M: Model>(model: &M) -> CheckReport {
    let initial = model.initial();
    let mut ids: HashMap<M::Config, usize> = HashMap::new();
    let mut configs = vec![initial.clone()];
    // Per config: the (parent id, event label) it was first reached by.
    let mut parents: Vec<Option<(usize, String)>> = vec![None];
    ids.insert(initial, 0);

    let mut fired: HashMap<(usize, Event), usize> = HashMap::new();
    let mut reached_states = vec![false; model.state_names().len()];
    let mut violations: Vec<Violation> = Vec::new();
    let mut seen_invariants: HashMap<String, ()> = HashMap::new();
    let mut steps_total = 0usize;

    let mut frontier = 0usize;
    while frontier < configs.len() {
        let id = frontier;
        frontier += 1;
        let cfg = configs[id].clone();
        for si in model.state_indices(&cfg) {
            reached_states[si] = true;
        }
        // Check the configuration's invariants, keeping one minimal
        // witness per invariant.
        for (invariant, detail) in model.violations(&cfg) {
            if seen_invariants.insert(invariant.clone(), ()).is_none() {
                violations.push(Violation {
                    invariant,
                    detail,
                    witness: witness(&parents, id),
                });
            }
        }
        let steps = model.steps(&cfg);
        if steps.is_empty() && seen_invariants.insert("stuck-state".into(), ()).is_none() {
            violations.push(Violation {
                invariant: "stuck-state".into(),
                detail: format!("configuration {cfg:?} has no enabled event"),
                witness: witness(&parents, id),
            });
        }
        for step in steps {
            steps_total += 1;
            for row in step.fired {
                *fired.entry(row).or_insert(0) += 1;
            }
            if !ids.contains_key(&step.next) {
                let next_id = configs.len();
                assert!(
                    next_id < MAX_CONFIGS,
                    "model exceeded {MAX_CONFIGS} configs"
                );
                ids.insert(step.next.clone(), next_id);
                configs.push(step.next);
                parents.push(Some((id, step.label)));
            }
        }
    }

    let dead_transitions = model
        .table_rows()
        .into_iter()
        .filter(|(row, _)| !fired.contains_key(row))
        .map(|(_, label)| label)
        .collect();
    let unreachable_states = model
        .state_names()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !reached_states[*i])
        .map(|(_, name)| name)
        .collect();

    CheckReport {
        protocol: model.protocol_name(),
        agents: model.agents(),
        configs: configs.len(),
        steps: steps_total,
        violations,
        dead_transitions,
        unreachable_states,
        totality_gaps: model.totality_gaps(),
    }
}

fn witness(parents: &[Option<(usize, String)>], mut id: usize) -> Vec<String> {
    let mut trace = Vec::new();
    while let Some((parent, label)) = &parents[id] {
        trace.push(label.clone());
        id = *parent;
    }
    trace.reverse();
    trace
}
