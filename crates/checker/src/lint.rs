//! Source lint enforcing the runtime's sync-shim discipline.
//!
//! The schedule checker (`tempstream-schedcheck`) is only sound if the
//! runtime routes **every** blocking or ordering operation through the
//! [`tempstream_runtime::sync`] shim — a `std::sync::Mutex` acquired
//! directly is invisible to the cooperative scheduler and silently
//! shrinks the explored interleaving space. This lint closes that hole
//! statically: it scans `crates/runtime/src/` and `crates/serve/src/`
//! (the server's queue and workers make the same promise, which is what
//! lets `tempstream-schedcheck` explore the ingest-queue drain
//! handshake) and fails on direct use of `std::sync::Mutex`,
//! `std::sync::Condvar`, `std::sync::atomic`, or
//! `std::thread::{spawn,scope,Builder}` anywhere outside
//!
//! * the shim itself (`crates/runtime/src/sync/`), which is the one
//!   place allowed to touch the real primitives,
//! * the server's binaries (`crates/serve/src/bin/`) — the `serve-load`
//!   client is an external process driving the server over TCP, not
//!   model-checked code, so it may use OS threads directly — and
//! * `#[cfg(test)]` blocks, where tests may freely use OS threads to
//!   exercise the shim from outside.
//!
//! It also forbids `Instant::now` in `crates/core/src/stages.rs`: the
//! pipeline stages must stay deterministic pure functions, and wall
//!-clock reads there would leak nondeterminism into the reproduction
//! gate (timing belongs to `runtime::metrics`).
//!
//! A third rule guards the engine boundary: `crates/serve/src/`
//! (binaries included) must not reach `tempstream_sequitur` — grammar
//! state belongs to the unified `core::engine::AnalysisEngine`, and the
//! server goes through it. A shard that touched the grammar directly
//! could diverge from the offline comparator and from the batch
//! pipeline, which is exactly the three-way drift the engine refactor
//! eliminated.
//!
//! The scan is deliberately a token scan, not a parse: line comments
//! are stripped, `#[cfg(test)] mod … { … }` regions are skipped by
//! brace counting, and the remaining text is searched for the
//! forbidden tokens. That is crude but exactly as strict as needed —
//! an evasion would have to be deliberate, and the point of the lint
//! is catching *accidental* regressions to raw `std` primitives.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One forbidden token found outside an exempt region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The forbidden token that matched.
    pub token: &'static str,
    /// The offending line, comment-stripped and trimmed.
    pub excerpt: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: forbidden `{}` outside an exempt region: {}",
            self.file, self.line, self.token, self.excerpt
        )
    }
}

/// Tokens the runtime may only use inside `sync/` (or under
/// `#[cfg(test)]`). `std::sync::Arc` and `std::sync::OnceLock` are
/// deliberately absent: neither is a scheduling decision point.
const RUNTIME_FORBIDDEN: &[&str] = &[
    "std::sync::Mutex",
    "std::sync::Condvar",
    "std::sync::atomic",
    "std::thread::spawn",
    "std::thread::scope",
    "std::thread::Builder",
];

/// Grouped-import members that smuggle the same primitives in via
/// `use std::sync::{…}`.
const RUNTIME_FORBIDDEN_GROUPED: &[&str] = &["Mutex", "Condvar", "atomic"];

/// Tokens forbidden in the pure pipeline stages.
const STAGES_FORBIDDEN: &[&str] = &["Instant::now"];

/// Tokens forbidden anywhere in the serve crate (binaries included):
/// grammar access goes through `core::engine`, never directly.
const SERVE_FORBIDDEN: &[&str] = &["tempstream_sequitur"];

/// Strips a line comment (`//`, `///`, `//!`) from one line.
///
/// Naive about `//` inside string literals; acceptable for a lint
/// whose job is catching accidental imports, which never hide there.
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

fn net_braces(code: &str) -> i32 {
    let mut n = 0i32;
    for c in code.chars() {
        match c {
            '{' => n += 1,
            '}' => n -= 1,
            _ => {}
        }
    }
    n
}

/// Scans one source file for `tokens`, skipping line comments and
/// `#[cfg(test)]`-attributed brace blocks.
fn scan(rel_path: &str, source: &str, tokens: &[&'static str], grouped: bool) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    // After seeing `#[cfg(test)]`, the next brace block is exempt.
    let mut pending_cfg_test = false;
    let mut test_depth: i32 = 0;
    let mut in_test_block = false;

    for (idx, raw) in source.lines().enumerate() {
        let code = strip_line_comment(raw);
        if in_test_block {
            test_depth += net_braces(code);
            if test_depth <= 0 {
                in_test_block = false;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            let opened = net_braces(code);
            if opened > 0 {
                pending_cfg_test = false;
                in_test_block = true;
                test_depth = opened;
            } else if !code.trim().is_empty() {
                // An attribute line (e.g. `#[allow(…)]`) between the
                // cfg and the block keeps the exemption pending.
                if !code.trim_start().starts_with("#[") {
                    pending_cfg_test = false;
                }
            }
            if in_test_block {
                continue;
            }
        }
        for token in tokens {
            if code.contains(token) {
                findings.push(LintFinding {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    token,
                    excerpt: code.trim().to_string(),
                });
            }
        }
        if grouped {
            if let Some(pos) = code.find("std::sync::{") {
                let group = &code[pos + "std::sync::{".len()..];
                let group = group.split('}').next().unwrap_or(group);
                for member in RUNTIME_FORBIDDEN_GROUPED {
                    if group
                        .split(',')
                        .any(|item| item.split_whitespace().next() == Some(member))
                    {
                        findings.push(LintFinding {
                            file: rel_path.to_string(),
                            line: idx + 1,
                            token: "std::sync::{…}",
                            excerpt: code.trim().to_string(),
                        });
                        break;
                    }
                }
            }
        }
    }
    findings
}

/// Lints one file by its repo-relative path (`/`-separated).
///
/// * under `crates/runtime/src/` but not `crates/runtime/src/sync/`:
///   the raw-primitive scan;
/// * under `crates/serve/src/` but not `crates/serve/src/bin/`: the
///   same raw-primitive scan (the server library must stay explorable
///   by the schedule checker; its client/server binaries are external
///   processes and exempt);
/// * under `crates/serve/src/` *including* `bin/`: the engine-boundary
///   scan — no direct `tempstream_sequitur` access anywhere in the
///   serve crate;
/// * `crates/core/src/stages.rs`: the wall-clock scan;
/// * anything else: exempt.
pub fn lint_file(rel_path: &str, source: &str) -> Vec<LintFinding> {
    let normalized = rel_path.replace('\\', "/");
    if normalized.starts_with("crates/runtime/src/")
        && !normalized.starts_with("crates/runtime/src/sync/")
        && normalized.ends_with(".rs")
    {
        return scan(&normalized, source, RUNTIME_FORBIDDEN, true);
    }
    if normalized.starts_with("crates/serve/src/") && normalized.ends_with(".rs") {
        let mut findings = if normalized.starts_with("crates/serve/src/bin/") {
            Vec::new()
        } else {
            scan(&normalized, source, RUNTIME_FORBIDDEN, true)
        };
        findings.extend(scan(&normalized, source, SERVE_FORBIDDEN, false));
        return findings;
    }
    if normalized == "crates/core/src/stages.rs" {
        return scan(&normalized, source, STAGES_FORBIDDEN, false);
    }
    Vec::new()
}

fn walk(dir: &Path, files: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints the whole tree rooted at `repo_root`.
///
/// # Errors
///
/// Propagates I/O failures reading the tree; lint findings are the
/// `Ok` payload, not errors.
pub fn lint_tree(repo_root: &Path) -> io::Result<Vec<LintFinding>> {
    let mut files = Vec::new();
    for src in ["crates/runtime/src", "crates/serve/src"] {
        let dir = repo_root.join(src);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let stages = repo_root.join("crates/core/src/stages.rs");
    if stages.is_file() {
        files.push(stages);
    }
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(repo_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        findings.extend(lint_file(&rel, &source));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUNTIME_PATH: &str = "crates/runtime/src/widget.rs";

    #[test]
    fn direct_mutex_in_runtime_fails() {
        // The acceptance-criterion case: synthetic std::sync::Mutex
        // use attributed to crates/runtime/ must be flagged.
        let src = "use std::sync::Mutex;\nfn f() { let m = Mutex::new(0); }\n";
        let findings = lint_file(RUNTIME_PATH, src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].token, "std::sync::Mutex");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn grouped_import_is_caught() {
        let src = "use std::sync::{Arc, Mutex};\n";
        let findings = lint_file(RUNTIME_PATH, src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].token, "std::sync::{…}");
        // …but Arc/OnceLock alone stay allowed.
        assert!(lint_file(RUNTIME_PATH, "use std::sync::{Arc, OnceLock};\n").is_empty());
    }

    #[test]
    fn thread_spawn_and_atomics_are_caught() {
        for src in [
            "fn f() { std::thread::spawn(|| {}); }\n",
            "use std::sync::atomic::AtomicUsize;\n",
            "fn f() { std::thread::scope(|s| {}); }\n",
            "let b = std::thread::Builder::new();\n",
        ] {
            assert_eq!(lint_file(RUNTIME_PATH, src).len(), 1, "missed: {src}");
        }
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "pub fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   use std::sync::Mutex;\n\
                   \x20   fn g() { std::thread::spawn(|| {}); }\n\
                   }\n";
        assert!(lint_file(RUNTIME_PATH, src).is_empty());
        // …and code AFTER the test block is scanned again.
        let trailing = format!("{src}use std::sync::Condvar;\n");
        let findings = lint_file(RUNTIME_PATH, &trailing);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].token, "std::sync::Condvar");
    }

    #[test]
    fn comments_and_shim_paths_are_exempt() {
        let commented = "// plain std::sync::Mutex in prose\n//! and std::thread::spawn docs\n";
        assert!(lint_file(RUNTIME_PATH, commented).is_empty());
        let shim = "use std::sync::{Mutex, Condvar};\nuse std::sync::atomic::AtomicUsize;\n";
        assert!(lint_file("crates/runtime/src/sync/mod.rs", shim).is_empty());
        assert!(lint_file("crates/runtime/src/sync/sched.rs", shim).is_empty());
        // Other crates are out of scope entirely.
        assert!(lint_file("crates/core/src/streams.rs", shim).is_empty());
    }

    #[test]
    fn serve_library_is_in_scope_but_its_bins_are_not() {
        let src = "use std::sync::Mutex;\n";
        // The server library makes the shim promise…
        let findings = lint_file("crates/serve/src/queue.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].token, "std::sync::Mutex");
        assert_eq!(lint_file("crates/serve/src/server.rs", src).len(), 1);
        // …while the client/server binaries are external processes.
        assert!(lint_file("crates/serve/src/bin/serve_load.rs", src).is_empty());
        assert!(lint_file(
            "crates/serve/src/bin/serve.rs",
            "fn f() { std::thread::spawn(|| {}); }\n"
        )
        .is_empty());
    }

    #[test]
    fn serve_cannot_reach_sequitur_directly() {
        // The engine boundary: grammar state is owned by
        // `core::engine::AnalysisEngine`; no serve source — library OR
        // binary — may link `tempstream_sequitur` around it.
        let src = "use tempstream_sequitur::Sequitur;\n";
        let findings = lint_file("crates/serve/src/shard.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].token, "tempstream_sequitur");
        let findings = lint_file(
            "crates/serve/src/bin/serve.rs",
            "fn f() { tempstream_sequitur::Sequitur::new(); }\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        // Prose mentions stay fine, and the engine itself is out of
        // scope — it is the one sanctioned owner of the grammar.
        assert!(lint_file(
            "crates/serve/src/offline.rs",
            "// via tempstream_sequitur\n"
        )
        .is_empty());
        assert!(lint_file("crates/core/src/engine.rs", src).is_empty());
        // Both rules stack on library files: a raw Mutex AND a direct
        // grammar import each produce their own finding.
        let both = "use std::sync::Mutex;\nuse tempstream_sequitur::Grammar;\n";
        let findings = lint_file("crates/serve/src/queue.rs", both);
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn instant_now_in_stages_fails() {
        let src = "fn t() { let t0 = std::time::Instant::now(); }\n";
        let findings = lint_file("crates/core/src/stages.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].token, "Instant::now");
        // The same code is fine elsewhere in core.
        assert!(lint_file("crates/core/src/report.rs", src).is_empty());
    }

    #[test]
    fn real_tree_is_clean() {
        // The actual repo must pass its own lint: the whole runtime
        // goes through the shim, stages never read the clock.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_tree(&root).expect("tree readable");
        assert!(
            findings.is_empty(),
            "lint-sources findings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
