//! Exhaustive model checker for the declarative coherence-protocol
//! tables in `tempstream-coherence`.
//!
//! The simulators drive every coherence decision through the static
//! [`MSI`](tempstream_coherence::protocol::MSI) and
//! [`MOSI`](tempstream_coherence::protocol::MOSI) tables. This crate
//! *verifies those tables*, independently of the simulators, by
//! breadth-first enumeration of the full cross-product state space of
//! one block across N caches (N = 2..=4) plus the ghost state the data
//! invariants need (shared-L2 presence, memory freshness). The spaces
//! are tiny (hundreds to a few thousand configurations), so the check is
//! a proof by exhaustion, not a sampling.
//!
//! Five invariant classes are verified in every reachable configuration:
//!
//! 1. **SWMR** — a writable (Modified) copy excludes every other valid
//!    copy, including the shared L2's;
//! 2. **single-owner** — at most one cache is responsible for the latest
//!    data (M or O);
//! 3. **level-consistency** — cache levels never disagree: Shared copies
//!    are memory-consistent (MSI) and the non-inclusive L2 never holds a
//!    copy a write has made stale (MOSI);
//! 4. **data-availability** — the latest written value survives every
//!    event sequence (no writeback is ever skipped);
//! 5. **coverage** — every `(state, event)` pair is handled exactly once
//!    or declared impossible (totality), declared-impossible pairs are
//!    unreachable, no reachable configuration is stuck, and every table
//!    row and state is exercised (no dead transitions, no unreachable
//!    states).
//!
//! Each violation carries a minimal event-sequence witness. The crate
//! doubles as a test-harness entry (`cargo test -p tempstream-checker`)
//! and a CI binary (`check-protocols`).
//!
//! # Example
//!
//! ```
//! let report = tempstream_checker::check_mosi(4);
//! assert!(report.passed(), "{report}");
//! ```

use std::fmt;

pub mod bfs;
pub mod lint;
pub mod mosi;
pub mod msi;

pub use bfs::{explore, Model};
pub use mosi::MosiModel;
pub use msi::MsiModel;

/// One invariant violation with a minimal witness trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant class failed (e.g. `SWMR`).
    pub invariant: String,
    /// What exactly is wrong in the violating configuration.
    pub detail: String,
    /// Shortest event sequence from the cold-start configuration to the
    /// violation (BFS discovery order guarantees minimality).
    pub witness: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [witness: {}]",
            self.invariant,
            self.detail,
            if self.witness.is_empty() {
                "initial state".to_string()
            } else {
                self.witness.join(" -> ")
            }
        )
    }
}

/// Result of exhaustively checking one protocol table at one cache
/// count.
#[derive(Debug)]
pub struct CheckReport {
    /// Name of the checked protocol table.
    pub protocol: &'static str,
    /// Number of caches in the model.
    pub agents: u32,
    /// Reachable configurations explored.
    pub configs: usize,
    /// Transitions (steps) taken during exploration.
    pub steps: usize,
    /// Safety violations, one minimal witness per invariant.
    pub violations: Vec<Violation>,
    /// Table transitions no reachable execution exercises.
    pub dead_transitions: Vec<String>,
    /// Protocol states no reachable configuration contains.
    pub unreachable_states: Vec<String>,
    /// Static totality defects of the table.
    pub totality_gaps: Vec<String>,
}

impl CheckReport {
    /// Whether every invariant class held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
            && self.dead_transitions.is_empty()
            && self.unreachable_states.is_empty()
            && self.totality_gaps.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} x{}: {} configurations, {} steps — {}",
            self.protocol,
            self.agents,
            self.configs,
            self.steps,
            if self.passed() { "OK" } else { "FAILED" }
        )?;
        for v in &self.violations {
            writeln!(f, "  violation {v}")?;
        }
        for d in &self.dead_transitions {
            writeln!(f, "  dead transition: {d}")?;
        }
        for s in &self.unreachable_states {
            writeln!(f, "  unreachable state: {s}")?;
        }
        for g in &self.totality_gaps {
            writeln!(f, "  totality gap: {g}")?;
        }
        Ok(())
    }
}

/// Checks the production MSI table with `agents` nodes (2..=8).
pub fn check_msi(agents: u32) -> CheckReport {
    explore(&MsiModel::new(agents))
}

/// Checks the production MOSI table with `agents` cores (2..=8).
pub fn check_mosi(agents: u32) -> CheckReport {
    explore(&MosiModel::new(agents))
}

/// Checks both production tables at every cache count the acceptance
/// criteria name (N = 2, 3, 4).
pub fn check_all() -> Vec<CheckReport> {
    (2..=4)
        .flat_map(|n| [check_msi(n), check_mosi(n)])
        .collect()
}
