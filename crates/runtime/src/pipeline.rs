//! The reproduction as a DAG of typed jobs on the work-stealing pool.
//!
//! Per workload × system context, the DAG is:
//!
//! ```text
//! Emit(workload) ──bounded channel──▶ Simulate(context) ──▶ Analyze(Streams) ──▶ Analyze(Origins)
//!                                            │                    │          └─▶ Analyze(Functions)
//!                                            │                    └─(labels)
//!                                            └──────────────────▶ Analyze(Strides)
//! ```
//!
//! and a final ordinal-keyed **Reduce** merges every partial into
//! [`WorkloadResults`].
//!
//! By default the emit stage is **fused** into its simulate job — the
//! same single-threaded collect the serial runner uses — because
//! streaming ~10⁶ accesses through a channel costs one full copy of the
//! stream plus a thread hand-off per batch, which on hosts with few
//! cores (or exactly one) turns "parallelism" into a slowdown. The
//! real concurrency win is *across* workloads and contexts, which the
//! pool already exploits. Setting
//! [`RuntimeConfig::pipelined_emit`] restores the streaming split: emit
//! jobs then run on companion threads paired with their simulate
//! consumer (never on pool workers — a blocked producer must not occupy
//! a worker, which keeps any worker count ≥ 1 deadlock-free).
//! Everything downstream is a pool job, spawned the moment its inputs
//! exist.
//!
//! **Determinism:** every job is a pure function from
//! [`crate::spill::SharedTrace`] inputs produced by the deterministic
//! emit/simulate stages of `tempstream_core::stages`, every partial is
//! filed under its [`JobSpec`] ordinal key, and the reducer walks keys
//! in ascending order — so the assembled results are bit-identical to
//! the serial runner for any worker count and any scheduling order.

use crate::channel::{bounded, Sender};
use crate::metrics::{RunMetrics, RunSummary, Stage};
use crate::pool::{self, Worker};
use crate::spill::{SharedTrace, TraceStore};
use crate::sync::{thread, Arc, Mutex};
use std::time::Instant;
use tempstream_coherence::{MultiChipSim, SingleChipSim};
use tempstream_core::experiment::{
    ExperimentConfig, IntraChipResults, OffChipResults, WorkloadResults,
};
use tempstream_core::report::{IntraClassBreakdown, MissClassBreakdown};
use tempstream_core::stages::{self, EmitOutput, PhasedSink, StreamsPartial};
use tempstream_core::streams::StreamLabel;
use tempstream_trace::io::TraceClass;
use tempstream_trace::sink::AccessSink;
use tempstream_trace::{MemoryAccess, SymbolTable};
use tempstream_workloads::Workload;

/// One of the three analysis contexts of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Context {
    /// Off-chip misses of the 16-node DSM.
    MultiChip,
    /// Off-chip misses of the 4-core CMP.
    SingleChip,
    /// On-chip-satisfied L1 misses of the CMP.
    IntraChip,
}

impl Context {
    fn index(self) -> usize {
        match self {
            Context::MultiChip => 0,
            Context::SingleChip => 1,
            Context::IntraChip => 2,
        }
    }
}

/// One of the four per-context analysis jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnalysisKind {
    /// SEQUITUR stream labeling and label-derived reports.
    Streams,
    /// Constant-stride run detection.
    Strides,
    /// Code-module attribution (Tables 3-5).
    Origins,
    /// Per-function attribution.
    Functions,
}

/// A typed job of the reproduction DAG.
///
/// The derived `Ord` is the reduction order: partial results are filed
/// under their spec and merged in ascending key order, which is what
/// makes the reduction independent of scheduling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobSpec {
    /// Drive one workload's access stream into a bounded channel.
    Emit {
        /// Ordinal of the workload in the run's workload list.
        workload: usize,
        /// The consuming simulation context (`IntraChip` never appears:
        /// the single-chip emit feeds both CMP contexts).
        context: Context,
    },
    /// Consume an access stream into a memory-system simulator.
    Simulate {
        /// Ordinal of the workload in the run's workload list.
        workload: usize,
        /// The simulation context being produced.
        context: Context,
    },
    /// Run one pure analysis over a collected trace.
    Analyze {
        /// Ordinal of the workload in the run's workload list.
        workload: usize,
        /// The trace context being analyzed.
        context: Context,
        /// Which analysis.
        kind: AnalysisKind,
    },
    /// Merge one workload's partials into its final results.
    Reduce {
        /// Ordinal of the workload in the run's workload list.
        workload: usize,
    },
}

impl JobSpec {
    /// The pipeline stage this job belongs to.
    pub fn stage(self) -> Stage {
        match self {
            JobSpec::Emit { .. } => Stage::Emit,
            JobSpec::Simulate { .. } => Stage::Simulate,
            JobSpec::Analyze { .. } => Stage::Analyze,
            JobSpec::Reduce { .. } => Stage::Reduce,
        }
    }
}

/// Target bytes of access stream per emit→simulate channel hand-off.
///
/// Each transfer pays one mutex acquisition and (on a sleeping
/// consumer) one condvar wake; 256 KB per hand-off amortizes that to
/// well under one lock operation per thousand accesses while staying
/// comfortably inside L2 on the consumer side.
const BATCH_TARGET_BYTES: usize = 256 * 1024;

/// Executor parameters.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Requested worker threads (clamped to at least 1). The pool never
    /// spawns more threads than the host's available parallelism —
    /// oversubscription only costs context switches — so this is an
    /// upper bound, reported as-is in the run summary.
    pub workers: usize,
    /// Run emit stages on companion threads streaming batches through a
    /// bounded channel, instead of fusing emit into the simulate job
    /// (the default). Fusion removes a full copy of the access stream
    /// and the per-batch thread hand-off; the split only pays off when
    /// idle cores outnumber the runnable simulate/analyze jobs.
    pub pipelined_emit: bool,
    /// Accesses per emit→simulate channel batch (pipelined mode only);
    /// defaults to [`BATCH_TARGET_BYTES`] worth of accesses.
    pub batch_size: usize,
    /// Batches in flight per emit→simulate channel (the backpressure
    /// bound).
    pub channel_capacity: usize,
    /// Record-count threshold above which collected traces spill to
    /// disk; defaults to the experiment's `max_analysis_misses`.
    pub spill_threshold: Option<usize>,
}

impl RuntimeConfig {
    /// A configuration with `workers` threads and default streaming
    /// parameters.
    pub fn with_workers(workers: usize) -> Self {
        RuntimeConfig {
            workers: workers.max(1),
            pipelined_emit: false,
            batch_size: (BATCH_TARGET_BYTES / std::mem::size_of::<MemoryAccess>()).max(1),
            channel_capacity: 8,
            spill_threshold: None,
        }
    }

    /// The host's available parallelism (the `--jobs` default).
    pub fn default_workers() -> usize {
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// What the emit stage streams to its simulate consumer.
enum EmitMsg {
    /// A batch of accesses (warmup or measured — the boundary is the
    /// `BeginMeasurement` marker).
    Batch(Vec<MemoryAccess>),
    /// The warmup/measurement boundary.
    BeginMeasurement,
    /// End of stream: measured instruction count and the symbol table.
    Done(Box<EmitOutput>),
}

/// An [`AccessSink`] that batches accesses into a bounded channel.
struct ChannelSink {
    tx: Sender<EmitMsg>,
    buf: Vec<MemoryAccess>,
    batch_size: usize,
}

impl ChannelSink {
    fn new(tx: Sender<EmitMsg>, batch_size: usize) -> Self {
        ChannelSink {
            tx,
            buf: Vec::with_capacity(batch_size),
            batch_size: batch_size.max(1),
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(self.batch_size));
            // A dropped receiver means the simulate job died; emission
            // continues into the void and the pool surfaces its panic.
            let _ = self.tx.send(EmitMsg::Batch(batch));
        }
    }

    fn finish(mut self, out: EmitOutput) {
        self.flush();
        let _ = self.tx.send(EmitMsg::Done(Box::new(out)));
    }
}

impl AccessSink for ChannelSink {
    fn access(&mut self, access: &MemoryAccess) {
        self.buf.push(*access);
        if self.buf.len() >= self.batch_size {
            self.flush();
        }
    }
}

impl PhasedSink for ChannelSink {
    fn begin_measurement(&mut self) {
        self.flush();
        let _ = self.tx.send(EmitMsg::BeginMeasurement);
    }
}

/// A write-once slot for one partial result.
struct Cell<T>(Mutex<Option<T>>);

impl<T> Cell<T> {
    fn new() -> Self {
        Cell(Mutex::new(None))
    }

    fn set(&self, value: T) {
        let prev = self.0.lock().replace(value);
        assert!(prev.is_none(), "partial result produced twice");
    }

    fn take(&self) -> T {
        self.0
            .lock()
            .take()
            .expect("partial result missing at reduction")
    }
}

/// The simulate stage's contribution for one context: full-trace class
/// breakdown and the total miss count.
enum BreakdownPartial {
    OffChip(MissClassBreakdown),
    IntraChip(IntraClassBreakdown),
}

struct CollectedPartial {
    breakdown: BreakdownPartial,
    total_misses: usize,
}

/// All partials for one (workload, context) pair, filled in by jobs and
/// drained by the key-ordered reducer.
struct ContextSlot {
    collected: Cell<CollectedPartial>,
    streams: Cell<StreamsPartial>,
    flags: Cell<Vec<bool>>,
    origins: Cell<tempstream_core::origins::OriginTable>,
    functions: Cell<tempstream_core::functions::FunctionTable>,
}

impl ContextSlot {
    fn new() -> Self {
        ContextSlot {
            collected: Cell::new(),
            streams: Cell::new(),
            flags: Cell::new(),
            origins: Cell::new(),
            functions: Cell::new(),
        }
    }
}

struct WorkloadSlots {
    contexts: [ContextSlot; 3],
}

impl WorkloadSlots {
    fn new() -> Self {
        WorkloadSlots {
            contexts: [ContextSlot::new(), ContextSlot::new(), ContextSlot::new()],
        }
    }

    fn context(&self, c: Context) -> &ContextSlot {
        &self.contexts[c.index()]
    }
}

/// Runs `workloads` through the full pipeline on up to `rt.workers`
/// threads (never more than the host's available parallelism).
///
/// Returns the per-workload results **in input order** (bit-identical
/// to [`tempstream_core::Experiment::run_workload`] on each) plus the
/// run's per-stage summary.
///
/// # Panics
///
/// Panics if the spill directory cannot be created, or if a
/// workload/simulator stage panics (the first panic is re-raised after
/// the pool drains). Spill write or reload failures do not abort the
/// run: writes fall back to keeping the trace in memory, and a spill
/// file lost mid-run degrades that context to an empty trace with a
/// warning on stderr.
pub fn run_workloads(
    cfg: &ExperimentConfig,
    rt: RuntimeConfig,
    workloads: &[Workload],
) -> (Vec<WorkloadResults>, RunSummary) {
    let start = Instant::now();
    let store = TraceStore::new(rt.spill_threshold.unwrap_or(cfg.max_analysis_misses))
        .expect("failed to create spill directory");
    let metrics = RunMetrics::new();
    let slots: Vec<WorkloadSlots> = workloads.iter().map(|_| WorkloadSlots::new()).collect();

    // Oversubscribing the hardware only adds context-switch and
    // cache-eviction cost: pipeline jobs are CPU-bound (spill I/O and
    // pipelined emit run on their own OS threads), so a worker thread
    // beyond the core count has nothing to overlap with. The pool gets
    // at most one thread per available core, whatever was requested;
    // results are bit-identical at any thread count either way.
    let threads = rt.workers.min(RuntimeConfig::default_workers());
    let (injector_depth, deque_depth) = pool::scope(threads, |p| {
        let cfg = *cfg;
        let (slots, store, metrics) = (&slots, &store, &metrics);
        for (ordinal, &workload) in workloads.iter().enumerate() {
            p.spawn(move |w| {
                simulate_multi_chip(w, &cfg, rt, workload, ordinal, slots, store, metrics);
            });
            p.spawn(move |w| {
                simulate_single_chip(w, &cfg, rt, workload, ordinal, slots, store, metrics);
            });
        }
        p.join();
        (p.injector_max_depth(), p.worker_max_depth())
    });

    // Ordinal-keyed reduction: walk JobSpec::Reduce keys in ascending
    // order; every partial is taken from its slot, never from arrival
    // order.
    let results = metrics.time(Stage::Reduce, || {
        workloads
            .iter()
            .enumerate()
            .map(|(ordinal, &workload)| reduce_workload(workload, &slots[ordinal]))
            .collect::<Vec<_>>()
    });

    // Spill writes run on the store's background thread; wait for the
    // queue to drain so the summary counters are exact.
    store.flush();
    let summary = metrics.summarize(
        rt.workers,
        start.elapsed(),
        injector_depth,
        deque_depth,
        store.spilled_traces(),
        store.spilled_bytes(),
    );
    (results, summary)
}

/// Convenience: the full paper workload list.
pub fn run_all(cfg: &ExperimentConfig, rt: RuntimeConfig) -> (Vec<WorkloadResults>, RunSummary) {
    run_workloads(cfg, rt, &Workload::ALL)
}

/// Runs the emit companion thread and drains its channel into `sim`
/// (any [`PhasedSink`]), returning the emit output once the stream
/// ends.
fn pump_emit_into<S: PhasedSink>(
    sim: &mut S,
    rt: RuntimeConfig,
    workload: Workload,
    num_cpus: u32,
    seed: u64,
    scale: tempstream_workloads::Scale,
    metrics: &RunMetrics,
) -> EmitOutput {
    let (tx, rx) = bounded::<EmitMsg>(rt.channel_capacity);
    let emitter: thread::ScopedTask<'_> = Box::new(move || {
        let t0 = Instant::now();
        let mut sink = ChannelSink::new(tx, rt.batch_size);
        let out = stages::emit_workload(workload, num_cpus, seed, scale, &mut sink);
        sink.finish(out);
        metrics.record(Stage::Emit, t0.elapsed());
    });
    thread::scope_with(vec![emitter], || {
        let mut done = None;
        // Drain every queued message per lock acquisition: with large
        // batches the channel lock is already cold, but recv_many also
        // frees all capacity slots at once so a blocked producer wakes
        // exactly once per drain instead of once per message.
        let mut pending = Vec::new();
        while rx.recv_many(&mut pending).is_ok() {
            for msg in pending.drain(..) {
                match msg {
                    EmitMsg::Batch(batch) => {
                        for a in &batch {
                            sim.access(a);
                        }
                    }
                    EmitMsg::BeginMeasurement => sim.begin_measurement(),
                    EmitMsg::Done(out) => done = Some(*out),
                }
            }
        }
        metrics.note_channel_depth(rx.max_depth());
        done.expect("emit stream ended without a Done message")
    })
}

#[allow(clippy::too_many_arguments)]
fn simulate_multi_chip<'env>(
    w: &Worker<'_, 'env>,
    cfg: &ExperimentConfig,
    rt: RuntimeConfig,
    workload: Workload,
    ordinal: usize,
    slots: &'env [WorkloadSlots],
    store: &'env TraceStore,
    metrics: &'env RunMetrics,
) {
    let t0 = Instant::now();
    let (mut trace, symbols) = if rt.pipelined_emit {
        let scale = stages::scale_for(cfg, workload);
        let mut sim = MultiChipSim::new(cfg.multi_chip);
        sim.set_recording(false);
        let out = pump_emit_into(
            &mut sim,
            rt,
            workload,
            cfg.multi_chip.nodes,
            cfg.seed,
            scale,
            metrics,
        );
        sim.export_obsv(
            tempstream_obsv::global(),
            &format!("sim/{}/multi_chip", workload.name()),
        );
        (sim.finish(out.instructions), out.symbols)
    } else {
        stages::collect_multi_chip(cfg, workload)
    };
    let slot = slots[ordinal].context(Context::MultiChip);
    slot.collected.set(CollectedPartial {
        breakdown: BreakdownPartial::OffChip(MissClassBreakdown::of_trace(&trace)),
        total_misses: trace.len(),
    });
    // Everything downstream reads at most the analysis cap; dropping
    // the excess now (breakdown and total are already banked) shrinks
    // both RSS and any spill write.
    trace.truncate(cfg.max_analysis_misses);
    let shared = Arc::new(store.put(trace));
    let symbols = Arc::new(symbols);
    metrics.record(Stage::Simulate, t0.elapsed());
    spawn_analyses(
        w,
        ordinal,
        Context::MultiChip,
        workload,
        cfg.max_analysis_misses,
        shared,
        symbols,
        slots,
        metrics,
    );
}

#[allow(clippy::too_many_arguments)]
fn simulate_single_chip<'env>(
    w: &Worker<'_, 'env>,
    cfg: &ExperimentConfig,
    rt: RuntimeConfig,
    workload: Workload,
    ordinal: usize,
    slots: &'env [WorkloadSlots],
    store: &'env TraceStore,
    metrics: &'env RunMetrics,
) {
    let t0 = Instant::now();
    let (mut traces, symbols) = if rt.pipelined_emit {
        let scale = stages::scale_for(cfg, workload);
        let mut sim = SingleChipSim::new(cfg.single_chip);
        sim.set_recording(false);
        let out = pump_emit_into(
            &mut sim,
            rt,
            workload,
            cfg.single_chip.cores,
            cfg.seed,
            scale,
            metrics,
        );
        sim.export_obsv(
            tempstream_obsv::global(),
            &format!("sim/{}/single_chip", workload.name()),
        );
        (sim.finish(out.instructions), out.symbols)
    } else {
        stages::collect_single_chip(cfg, workload)
    };
    let symbols = Arc::new(symbols);

    let off_slot = slots[ordinal].context(Context::SingleChip);
    off_slot.collected.set(CollectedPartial {
        breakdown: BreakdownPartial::OffChip(MissClassBreakdown::of_trace(&traces.off_chip)),
        total_misses: traces.off_chip.len(),
    });
    let intra_slot = slots[ordinal].context(Context::IntraChip);
    intra_slot.collected.set(CollectedPartial {
        breakdown: BreakdownPartial::IntraChip(IntraClassBreakdown::of_trace(&traces.intra_chip)),
        total_misses: traces.intra_chip.len(),
    });

    // See `simulate_multi_chip`: downstream jobs only read the capped
    // prefix, so shed the excess before storing.
    traces.off_chip.truncate(cfg.max_analysis_misses);
    traces.intra_chip.truncate(cfg.max_analysis_misses);
    let off_shared = Arc::new(store.put(traces.off_chip));
    let intra_shared = Arc::new(store.put(traces.intra_chip));
    metrics.record(Stage::Simulate, t0.elapsed());

    spawn_analyses(
        w,
        ordinal,
        Context::SingleChip,
        workload,
        cfg.max_analysis_misses,
        off_shared,
        symbols.clone(),
        slots,
        metrics,
    );
    spawn_analyses(
        w,
        ordinal,
        Context::IntraChip,
        workload,
        cfg.max_analysis_misses,
        intra_shared,
        symbols,
        slots,
        metrics,
    );
}

/// Spawns the four analysis jobs for one collected context. `Streams`
/// spawns `Origins` and `Functions` the moment the labels exist;
/// `Strides` is independent.
#[allow(clippy::too_many_arguments)]
fn spawn_analyses<'env, C>(
    w: &Worker<'_, 'env>,
    ordinal: usize,
    context: Context,
    workload: Workload,
    max_analysis_misses: usize,
    shared: Arc<SharedTrace<C>>,
    symbols: Arc<SymbolTable>,
    slots: &'env [WorkloadSlots],
    metrics: &'env RunMetrics,
) where
    C: TraceClass + Send + Sync + 'static,
{
    let slot = slots[ordinal].context(context);

    {
        let shared = shared.clone();
        w.spawn(move |w2| {
            metrics.time(Stage::Analyze, || {
                let trace = shared.trace_or_empty();
                let records = stages::cap(trace.records(), max_analysis_misses);
                let partial = stages::analyze_streams(records, trace.num_cpus());
                // The partial shares its label vector behind an Arc, so
                // handing labels to the origin/function jobs is a
                // refcount bump, not a copy of ~10⁶ entries.
                let labels: Arc<Vec<StreamLabel>> = partial.labels.clone();
                slot.streams.set(partial);

                let (sh, sy, lb) = (shared.clone(), symbols.clone(), labels.clone());
                w2.spawn(move |_| {
                    metrics.time(Stage::Analyze, || {
                        let records =
                            stages::cap(sh.trace_or_empty().records(), max_analysis_misses);
                        slot.origins
                            .set(stages::analyze_origins(records, &lb, &sy, workload));
                    });
                });
                let (sh, sy) = (shared.clone(), symbols.clone());
                w2.spawn(move |_| {
                    metrics.time(Stage::Analyze, || {
                        let records =
                            stages::cap(sh.trace_or_empty().records(), max_analysis_misses);
                        slot.functions
                            .set(stages::analyze_functions(records, &labels, &sy));
                    });
                });
            });
        });
    }

    w.spawn(move |_| {
        metrics.time(Stage::Analyze, || {
            let trace = shared.trace_or_empty();
            let records = stages::cap(trace.records(), max_analysis_misses);
            slot.flags
                .set(stages::analyze_strides(records, trace.num_cpus()));
        });
    });
}

/// Merges one workload's partials, in ascending context order.
fn reduce_workload(workload: Workload, slots: &WorkloadSlots) -> WorkloadResults {
    let off = |context: Context| {
        let slot = slots.context(context);
        let collected = slot.collected.take();
        let BreakdownPartial::OffChip(breakdown) = collected.breakdown else {
            panic!("off-chip context carried an intra-chip breakdown");
        };
        let streams = slot.streams.take();
        let analyzed = streams.labels.len();
        OffChipResults {
            breakdown,
            total_misses: collected.total_misses,
            streams: stages::assemble_stream_results(
                streams,
                &slot.flags.take(),
                slot.origins.take(),
                slot.functions.take(),
                analyzed,
            ),
        }
    };
    let multi_chip = off(Context::MultiChip);
    let single_chip = off(Context::SingleChip);

    let slot = slots.context(Context::IntraChip);
    let collected = slot.collected.take();
    let BreakdownPartial::IntraChip(breakdown) = collected.breakdown else {
        panic!("intra-chip context carried an off-chip breakdown");
    };
    let streams = slot.streams.take();
    let analyzed = streams.labels.len();
    let intra_chip = IntraChipResults {
        breakdown,
        total_misses: collected.total_misses,
        streams: stages::assemble_stream_results(
            streams,
            &slot.flags.take(),
            slot.origins.take(),
            slot.functions.take(),
            analyzed,
        ),
    };

    WorkloadResults {
        workload,
        multi_chip,
        single_chip,
        intra_chip,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_core::Experiment;

    fn digest(results: &[WorkloadResults]) -> String {
        // Debug formatting round-trips every counter and every f64
        // exactly (shortest-roundtrip), so string equality here is
        // bit-identity of the result structures.
        format!("{results:#?}")
    }

    #[test]
    fn parallel_matches_serial_for_any_worker_count() {
        let cfg = ExperimentConfig::quick();
        let workloads = [Workload::Apache, Workload::DssQ2];
        let serial: Vec<_> = workloads
            .iter()
            .map(|&w| Experiment::new(cfg).run_workload(w))
            .collect();
        let expected = digest(&serial);
        for pipelined in [false, true] {
            for workers in [1, 2, 4] {
                let mut rt = RuntimeConfig::with_workers(workers);
                rt.pipelined_emit = pipelined;
                let (got, summary) = run_workloads(&cfg, rt, &workloads);
                assert_eq!(
                    digest(&got),
                    expected,
                    "results diverged with {workers} workers (pipelined: {pipelined})"
                );
                assert_eq!(summary.workers, workers);
                if pipelined {
                    assert!(summary.stages[0].jobs > 0, "no emit jobs recorded");
                }
                assert!(summary.stages[2].jobs > 0, "no analyze jobs recorded");
            }
        }
    }

    #[test]
    fn forced_spill_is_transparent() {
        let cfg = ExperimentConfig::quick();
        let workloads = [Workload::Oltp];
        let expected = digest(&[Experiment::new(cfg).run_workload(Workload::Oltp)]);
        let mut rt = RuntimeConfig::with_workers(2);
        rt.spill_threshold = Some(0); // every trace pages out
        let (got, summary) = run_workloads(&cfg, rt, &workloads);
        assert_eq!(digest(&got), expected, "spill round-trip changed results");
        assert_eq!(summary.spilled_traces, 3, "all three contexts must spill");
        assert!(summary.spilled_bytes > 0);
    }

    #[test]
    fn job_spec_orders_by_ordinal_key() {
        let a = JobSpec::Analyze {
            workload: 0,
            context: Context::MultiChip,
            kind: AnalysisKind::Streams,
        };
        let b = JobSpec::Analyze {
            workload: 0,
            context: Context::SingleChip,
            kind: AnalysisKind::Streams,
        };
        let c = JobSpec::Reduce { workload: 1 };
        assert!(a < b && b < c);
        assert_eq!(a.stage(), Stage::Analyze);
        assert_eq!(c.stage(), Stage::Reduce);
    }

    #[test]
    fn summary_reports_pipeline_shape() {
        let cfg = ExperimentConfig::quick();
        let mut rt = RuntimeConfig::with_workers(2);
        rt.pipelined_emit = true;
        let (_, summary) = run_workloads(&cfg, rt, &[Workload::Zeus]);
        // 2 simulate jobs (mc + sc), 2 emit companions, 12 analyze jobs
        // (3 contexts × 4 analyses), 1 reduce call.
        assert_eq!(summary.stages[0].jobs, 2, "emit jobs");
        assert_eq!(summary.stages[1].jobs, 2, "simulate jobs");
        assert_eq!(summary.stages[2].jobs, 12, "analyze jobs");
        assert_eq!(summary.stages[3].jobs, 1, "reduce batches");
        assert!(summary.wall.as_nanos() > 0);
    }

    #[test]
    fn fused_emit_records_no_emit_jobs() {
        // The default mode fuses emit into simulate; the stage summary
        // reflects the collapsed shape.
        let cfg = ExperimentConfig::quick();
        let (_, summary) = run_workloads(&cfg, RuntimeConfig::with_workers(2), &[Workload::Zeus]);
        assert_eq!(summary.stages[0].jobs, 0, "fused mode has no emit jobs");
        assert_eq!(summary.stages[1].jobs, 2, "simulate jobs");
        assert_eq!(summary.stages[2].jobs, 12, "analyze jobs");
        assert_eq!(summary.stages[3].jobs, 1, "reduce batches");
    }
}
