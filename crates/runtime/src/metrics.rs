//! Per-stage timing and queue-depth metrics for a pipeline run.
//!
//! Every job records its stage and busy time into a shared
//! [`RunMetrics`] — a thin facade over a per-run
//! [`tempstream_obsv::Registry`] whose span/gauge handles are atomics,
//! so the job completion path stays lock-free; at the end of a run the
//! executor folds in queue high-water marks and spill counters and
//! renders a [`RunSummary`]. The summary goes to stderr so the
//! determinism gate can diff stdout byte-for-byte.

use std::fmt;
use std::time::Duration;
use tempstream_obsv::{fracf, Gauge, Registry, SpanStat};

/// The pipeline stage a job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Workload generation (access emission).
    Emit,
    /// Memory-system simulation (trace collection).
    Simulate,
    /// Trace analyses (streams / strides / origins / functions).
    Analyze,
    /// Ordinal-keyed merge of analysis partials.
    Reduce,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Emit, Stage::Simulate, Stage::Analyze, Stage::Reduce];

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Emit => "emit",
            Stage::Simulate => "simulate",
            Stage::Analyze => "analyze",
            Stage::Reduce => "reduce",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Emit => 0,
            Stage::Simulate => 1,
            Stage::Analyze => 2,
            Stage::Reduce => 3,
        }
    }
}

/// Shared metric sinks for one pipeline run.
///
/// Internally a private [`Registry`] with one span per stage (keyed
/// `stage/<name>`) and a `channel_depth/max` gauge — per-run so
/// concurrent pipelines never mix counters, and snapshot-able for the
/// metrics JSON export.
#[derive(Debug)]
pub struct RunMetrics {
    registry: Registry,
    stages: [SpanStat; 4],
    max_channel_depth: Gauge,
}

impl Default for RunMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl RunMetrics {
    /// Creates a zeroed metrics sink.
    pub fn new() -> Self {
        let registry = Registry::new();
        let stages = Stage::ALL.map(|s| registry.span(&format!("stage/{}", s.name())));
        let max_channel_depth = registry.gauge("channel_depth/max");
        RunMetrics {
            registry,
            stages,
            max_channel_depth,
        }
    }

    /// The per-run registry backing the stage spans; snapshot it for
    /// structured export.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one finished job of `stage` that ran for `busy`.
    pub fn record(&self, stage: Stage, busy: Duration) {
        self.stages[stage.index()].record(busy);
    }

    /// Folds one emit→simulate channel's depth high-water mark into the
    /// run-wide maximum.
    pub fn note_channel_depth(&self, depth: usize) {
        self.max_channel_depth.set_max(depth as u64);
    }

    /// Runs `f` and records its wall time against `stage`.
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record(stage, start.elapsed());
        out
    }

    /// Snapshots the per-stage counters into a summary.
    pub fn summarize(
        &self,
        workers: usize,
        wall: Duration,
        max_injector_depth: usize,
        max_deque_depth: usize,
        spilled_traces: usize,
        spilled_bytes: u64,
    ) -> RunSummary {
        let stages = Stage::ALL.map(|s| {
            let span = &self.stages[s.index()];
            StageSummary {
                stage: s,
                jobs: span.count() as usize,
                busy: span.total(),
                max_job: span.max(),
            }
        });
        RunSummary {
            workers,
            wall,
            stages,
            max_injector_depth,
            max_deque_depth,
            max_channel_depth: self.max_channel_depth.get() as usize,
            spilled_traces,
            spilled_bytes,
        }
    }
}

/// Aggregate timing for one stage.
#[derive(Debug, Clone, Copy)]
pub struct StageSummary {
    /// The stage.
    pub stage: Stage,
    /// Jobs that ran in this stage.
    pub jobs: usize,
    /// Total busy time across all jobs (can exceed wall time when the
    /// stage ran on several workers at once).
    pub busy: Duration,
    /// Longest single job.
    pub max_job: Duration,
}

/// Everything the executor reports about one run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Worker threads in the pool.
    pub workers: usize,
    /// End-to-end wall-clock time of the run.
    pub wall: Duration,
    /// Per-stage aggregates, in pipeline order.
    pub stages: [StageSummary; 4],
    /// Injector-queue depth high-water mark.
    pub max_injector_depth: usize,
    /// Worker-deque depth high-water mark.
    pub max_deque_depth: usize,
    /// Emit→simulate channel depth high-water mark (in batches).
    pub max_channel_depth: usize,
    /// Traces paged out to disk.
    pub spilled_traces: usize,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
}

impl RunSummary {
    /// Total busy time across all stages.
    pub fn total_busy(&self) -> Duration {
        self.stages.iter().map(|s| s.busy).sum()
    }

    /// Busy-time / (wall × workers): 1.0 means every worker was busy
    /// for the whole run. Emit time runs on companion threads, so the
    /// ratio can exceed 1.0.
    pub fn utilization(&self) -> f64 {
        fracf(
            self.total_busy().as_secs_f64(),
            self.wall.as_secs_f64() * self.workers as f64,
        )
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline summary: {} workers, wall {:.2}s, utilization {:.2}",
            self.workers,
            self.wall.as_secs_f64(),
            self.utilization()
        )?;
        writeln!(
            f,
            "  {:<10} {:>6} {:>10} {:>10}",
            "stage", "jobs", "busy (s)", "max job(s)"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:<10} {:>6} {:>10.2} {:>10.2}",
                s.stage.name(),
                s.jobs,
                s.busy.as_secs_f64(),
                s.max_job.as_secs_f64()
            )?;
        }
        writeln!(
            f,
            "  queue depth: injector max {}, worker deque max {}, emit channel max {}",
            self.max_injector_depth, self.max_deque_depth, self.max_channel_depth
        )?;
        write!(
            f,
            "  spill store: {} traces, {:.1} MiB",
            self.spilled_traces,
            self.spilled_bytes as f64 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_stage() {
        let m = RunMetrics::new();
        m.record(Stage::Emit, Duration::from_millis(5));
        m.record(Stage::Emit, Duration::from_millis(7));
        m.record(Stage::Analyze, Duration::from_millis(11));
        m.note_channel_depth(3);
        m.note_channel_depth(2);
        let s = m.summarize(4, Duration::from_millis(20), 9, 5, 1, 2048);
        assert_eq!(s.stages[0].jobs, 2);
        assert_eq!(s.stages[0].busy, Duration::from_millis(12));
        assert_eq!(s.stages[0].max_job, Duration::from_millis(7));
        assert_eq!(s.stages[2].jobs, 1);
        assert_eq!(s.stages[1].jobs, 0);
        assert_eq!(s.max_channel_depth, 3);
        assert_eq!(s.spilled_traces, 1);
        assert!(s.utilization() > 0.0);
    }

    #[test]
    fn summary_renders_every_stage() {
        let m = RunMetrics::new();
        m.time(Stage::Reduce, || {
            std::thread::sleep(Duration::from_millis(1));
        });
        let text = m
            .summarize(2, Duration::from_millis(2), 0, 0, 0, 0)
            .to_string();
        for stage in Stage::ALL {
            assert!(text.contains(stage.name()), "missing {}", stage.name());
        }
        assert!(text.contains("spill store"));
    }
}
