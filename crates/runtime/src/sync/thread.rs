//! Thread spawning and scoping shims.
//!
//! Mirrors the `std::thread` subset the runtime uses: free
//! [`spawn`], named [`Builder`] spawns, and the [`scope_with`] helper
//! that replaces direct `std::thread::scope` use (a safe wrapper cannot
//! re-expose std's scope API — `std::thread::Scope` is invariant in its
//! `'scope` parameter — so the shim offers the narrower "run these
//! borrowed closures on threads while I run the body" shape the runtime
//! actually needs). Under an active `schedcheck` execution, spawned
//! closures become *virtual threads* of the cooperative scheduler: they
//! still run on real OS threads, but only ever one at a time, with
//! every handoff chosen by the exploration strategy; joins block in
//! scheduler space, never in the OS.

use std::io;

pub use std::thread::available_parallelism;

#[cfg(feature = "schedcheck")]
use super::sched;
#[cfg(feature = "schedcheck")]
use std::sync::Arc;

/// Result slot a virtual thread writes before it finishes.
#[cfg(feature = "schedcheck")]
type Slot<T> = Arc<std::sync::Mutex<Option<T>>>;

/// Spawns a new thread running `f`, like [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Thread factory with a configurable name, like
/// [`std::thread::Builder`].
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a builder with no name set.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Names the thread-to-be.
    #[must_use]
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns a new thread running `f`.
    ///
    /// # Errors
    ///
    /// Returns any error from the underlying OS thread spawn.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        #[cfg(feature = "schedcheck")]
        if let Some(ctx) = sched::current() {
            let label = self.name.clone().unwrap_or_else(|| "thread".to_string());
            let vid = sched::register_thread(&ctx, &label);
            let slot: Slot<T> = Arc::new(std::sync::Mutex::new(None));
            let exec = sched::execution_of(&ctx);
            let write = Arc::clone(&slot);
            let mut b = std::thread::Builder::new();
            if let Some(n) = self.name {
                b = b.name(n);
            }
            let real = b.spawn(move || {
                sched::vthread_main(exec, vid, move || {
                    let v = f();
                    *write
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
                });
            })?;
            sched::yield_if_active("thread.spawn");
            return Ok(JoinHandle(HandleInner::Virtual {
                ctx,
                vid,
                slot,
                real,
            }));
        }
        let mut b = std::thread::Builder::new();
        if let Some(n) = self.name {
            b = b.name(n);
        }
        Ok(JoinHandle(HandleInner::Std(b.spawn(f)?)))
    }
}

enum HandleInner<T> {
    Std(std::thread::JoinHandle<T>),
    #[cfg(feature = "schedcheck")]
    Virtual {
        ctx: sched::VCtx,
        vid: usize,
        slot: Slot<T>,
        real: std::thread::JoinHandle<()>,
    },
}

/// Owned handle to join a spawned thread, like
/// [`std::thread::JoinHandle`].
pub struct JoinHandle<T>(HandleInner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            HandleInner::Std(h) => h.join(),
            #[cfg(feature = "schedcheck")]
            HandleInner::Virtual {
                ctx,
                vid,
                slot,
                real,
            } => {
                sched::join(&ctx, vid);
                let _ = real.join();
                match slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                {
                    Some(v) => Ok(v),
                    // The joined virtual thread panicked; the execution
                    // is aborting and this thread unwinds with it.
                    None => sched::abort_unwind(),
                }
            }
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle { .. }")
    }
}

/// A borrowing worker closure for [`scope_with`].
pub type ScopedTask<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Runs `body` on the calling thread while every closure in `workers`
/// runs on its own thread; all worker threads are joined before the
/// call returns, so the closures may borrow from the caller's
/// environment.
///
/// If a worker panics, the panic is re-raised here after every worker
/// has been joined (the behavior of [`std::thread::scope`], which backs
/// this in normal builds).
pub fn scope_with<'env, T>(workers: Vec<ScopedTask<'env>>, body: impl FnOnce() -> T) -> T {
    #[cfg(feature = "schedcheck")]
    if let Some(ctx) = sched::current() {
        return std::thread::scope(|s| {
            let mut vids = Vec::with_capacity(workers.len());
            for (i, w) in workers.into_iter().enumerate() {
                let vid = sched::register_thread(&ctx, &format!("scoped-{i}"));
                let exec = sched::execution_of(&ctx);
                s.spawn(move || sched::vthread_main(exec, vid, w));
                sched::yield_if_active("thread.spawn");
                vids.push(vid);
            }
            let out = body();
            // Join in scheduler space first; the implicit std join below
            // then completes immediately instead of blocking the whole
            // execution on an OS join the scheduler cannot see.
            for vid in vids {
                sched::join(&ctx, vid);
            }
            out
        });
    }
    std::thread::scope(|s| {
        for w in workers {
            s.spawn(w);
        }
        body()
    })
}
