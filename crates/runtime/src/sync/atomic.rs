//! Atomic integer shims.
//!
//! Same API subset as `std::sync::atomic`, backed by the real std
//! atomics. Under an active `schedcheck` execution, every operation
//! with an ordering stronger than `Relaxed` is a scheduling point;
//! relaxed operations are not (the runtime uses them only for
//! monotonic metrics and ID allocation — see the [`super`] docs).

pub use std::sync::atomic::Ordering;

macro_rules! atomic_shim {
    ($(#[$doc:meta])* $name:ident, $std:ident, $int:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic holding `value`.
            pub const fn new(value: $int) -> Self {
                $name {
                    inner: std::sync::atomic::$std::new(value),
                }
            }

            /// Loads the current value.
            pub fn load(&self, order: Ordering) -> $int {
                maybe_yield(order, concat!(stringify!($name), ".load"));
                self.inner.load(order)
            }

            /// Stores `value`.
            pub fn store(&self, value: $int, order: Ordering) {
                maybe_yield(order, concat!(stringify!($name), ".store"));
                self.inner.store(value, order);
            }

            /// Adds `value`, returning the previous value.
            pub fn fetch_add(&self, value: $int, order: Ordering) -> $int {
                maybe_yield(order, concat!(stringify!($name), ".fetch_add"));
                self.inner.fetch_add(value, order)
            }

            /// Raises the value to `max(current, value)`, returning the
            /// previous value.
            pub fn fetch_max(&self, value: $int, order: Ordering) -> $int {
                maybe_yield(order, concat!(stringify!($name), ".fetch_max"));
                self.inner.fetch_max(value, order)
            }
        }
    };
}

atomic_shim!(
    /// Shimmed [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    AtomicUsize,
    usize
);
atomic_shim!(
    /// Shimmed [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    AtomicU64,
    u64
);

#[cfg(feature = "schedcheck")]
fn maybe_yield(order: Ordering, label: &'static str) {
    if order != Ordering::Relaxed {
        super::sched::yield_if_active(label);
    }
}

#[cfg(not(feature = "schedcheck"))]
fn maybe_yield(_order: Ordering, _label: &'static str) {}
