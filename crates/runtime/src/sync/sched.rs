//! The cooperative schedule-exploring scheduler behind the `schedcheck`
//! feature.
//!
//! A model-checking *execution* runs a closed concurrent model (a
//! closure that spawns threads and exercises the runtime's
//! synchronization primitives through the [`super`] shim) under a
//! scheduler that serializes everything: virtual threads live on real
//! OS threads, but exactly one runs at a time, and every potential
//! interleaving point — mutex acquire/release, condvar wait/notify,
//! non-relaxed atomics, spawn, join — hands control back to a
//! controller that picks the next thread to run. Because the model only
//! communicates through shimmed primitives, its behavior is a
//! deterministic function of that decision sequence, which makes
//! schedules **replayable**: a failure is reported as the exact list of
//! choices (plus the seed, for random runs) that reaches it.
//!
//! Two exploration strategies are provided, following the systematic
//! concurrency-testing literature (CHESS-style iterative context
//! bounding, PCT-style randomized scheduling):
//!
//! * [`explore_dfs`] — exhaustive enumeration of all schedules with at
//!   most `max_preemptions` preemptive context switches, searched
//!   best-first by preemption count so the first counterexample found
//!   is minimal in preemptions;
//! * [`explore_random`] — seeded uniform-random scheduling for models
//!   whose bounded space is too large to exhaust; the same seed always
//!   reproduces the same schedule byte-for-byte.
//!
//! Failures detected: **deadlock** (every live thread blocked — which
//! is also how a lost wakeup or a dropped `notify_one` manifests),
//! **panic** (a model assertion fired), and a decision-count limit
//! (livelock guard). Each produces a [`Counterexample`] carrying the
//! replayable [`Schedule`] and a human-readable decision trace.
//!
//! # Model rules
//!
//! Model closures must create all shared state *inside* the closure
//! (primitives are tagged with the execution that created them;
//! untagged primitives fall back to raw `std` behavior, which the
//! scheduler cannot see), must be deterministic apart from scheduling
//! (no wall-clock reads, no ambient randomness), and should stay small:
//! 2–4 threads and a few dozen operations keep exhaustive exploration
//! in the thousands of executions.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard, PoisonError,
};
use tempstream_trace::rng::SplitMix64;

/// Panic payload used to unwind virtual threads when an execution
/// aborts (counterexample found). Never escapes: every virtual-thread
/// entry point catches and swallows it.
struct AbortToken;

thread_local! {
    static CONTEXT: RefCell<Option<VCtx>> = const { RefCell::new(None) };
    static SILENCED: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses panic
/// output from threads currently running inside an execution: model
/// assertion failures and abort unwinds are expected events during
/// exploration and are reported through [`Counterexample`] instead.
fn install_quiet_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SILENCED.with(Cell::get) {
                return;
            }
            prev(info);
        }));
    });
}

/// Identity of a shim object (mutex or condvar) within one execution.
pub(crate) struct ObjectTag {
    exec_id: u64,
    pub(crate) index: usize,
}

/// A virtual thread's handle to its execution: the shared scheduler
/// plus this thread's id.
#[derive(Clone)]
pub(crate) struct VCtx {
    exec: Arc<ExecInner>,
    me: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Turn {
    Controller,
    Thread(usize),
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

struct ThreadState {
    status: Status,
    name: String,
    /// Label of the operation the thread last yielded at.
    at: String,
}

/// What kind of nondeterministic choice a decision resolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DecisionKind {
    /// Which runnable thread runs next.
    Schedule,
    /// Which condvar waiter a `notify_one` wakes.
    Wakeup,
}

struct DecisionRecord {
    kind: DecisionKind,
    /// Thread ids eligible at this decision.
    enabled: Vec<u32>,
    /// Index into `enabled` that was taken.
    chosen: u32,
    /// Index into `enabled` of the previously-running thread, when it
    /// was still eligible (choosing it costs no preemption).
    current_index: Option<u32>,
    /// Cumulative preemptions on the path before this decision.
    preemptions_before: u32,
    desc: String,
}

enum Policy {
    /// Prefer the currently-running thread (non-preemptive baseline);
    /// used as the DFS default continuation and for pure replays.
    Run,
    /// Seeded uniform-random choice.
    Random(SplitMix64),
}

struct Strategy {
    prefix: Vec<u32>,
    policy: Policy,
}

struct SchedState {
    turn: Turn,
    aborted: bool,
    current: usize,
    threads: Vec<ThreadState>,
    mutex_owners: Vec<Option<usize>>,
    condvars: usize,
    log: Vec<DecisionRecord>,
    preemptions: u32,
    strategy: Strategy,
    failure: Option<(FailureKind, String)>,
    max_decisions: usize,
}

pub(crate) struct ExecInner {
    id: u64,
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

fn lock_state(exec: &ExecInner) -> StdGuard<'_, SchedState> {
    exec.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The calling thread's execution context, if it is a virtual thread.
pub(crate) fn current() -> Option<VCtx> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// The context, but only when `tag` belongs to the same execution.
pub(crate) fn active_context(tag: Option<&ObjectTag>) -> Option<VCtx> {
    let tag = tag?;
    let ctx = current()?;
    (ctx.exec.id == tag.exec_id).then_some(ctx)
}

/// Whether `tag` was registered by `ctx`'s execution.
pub(crate) fn same_execution(ctx: &VCtx, tag: &ObjectTag) -> bool {
    ctx.exec.id == tag.exec_id
}

/// The execution a context belongs to.
pub(crate) fn execution_of(ctx: &VCtx) -> Arc<ExecInner> {
    Arc::clone(&ctx.exec)
}

/// Registers a new shim mutex with the active execution, if any.
pub(crate) fn register_mutex() -> Option<ObjectTag> {
    current().map(|ctx| {
        let mut st = lock_state(&ctx.exec);
        st.mutex_owners.push(None);
        ObjectTag {
            exec_id: ctx.exec.id,
            index: st.mutex_owners.len() - 1,
        }
    })
}

/// Registers a new shim condvar with the active execution, if any.
pub(crate) fn register_condvar() -> Option<ObjectTag> {
    current().map(|ctx| {
        let mut st = lock_state(&ctx.exec);
        let index = st.condvars;
        st.condvars += 1;
        ObjectTag {
            exec_id: ctx.exec.id,
            index,
        }
    })
}

/// Registers a new virtual thread (runnable, not yet started) and
/// returns its id.
pub(crate) fn register_thread(ctx: &VCtx, name: &str) -> usize {
    let mut st = lock_state(&ctx.exec);
    st.threads.push(ThreadState {
        status: Status::Runnable,
        name: name.to_string(),
        at: "spawned".to_string(),
    });
    st.threads.len() - 1
}

/// Parks the calling virtual thread until the controller grants it the
/// turn. Returns the reacquired state guard and `false` when the
/// execution aborted instead.
fn park<'a>(
    exec: &'a ExecInner,
    me: usize,
    mut st: StdGuard<'a, SchedState>,
) -> (StdGuard<'a, SchedState>, bool) {
    exec.cv.notify_all();
    loop {
        if st.aborted {
            return (st, false);
        }
        if st.turn == Turn::Thread(me) {
            return (st, true);
        }
        st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Shared exit path for virtual ops that observe an abort: threads that
/// are already unwinding degrade to plain `std` behavior (so `Drop`
/// impls never double-panic); everything else unwinds with the abort
/// token.
fn degraded() -> bool {
    if std::thread::panicking() {
        false
    } else {
        panic::panic_any(AbortToken)
    }
}

/// Unwinds the current virtual thread as part of an execution abort.
pub(crate) fn abort_unwind() -> ! {
    panic::panic_any(AbortToken)
}

/// A scheduling point: hands the turn to the controller and blocks
/// until rescheduled. No-op outside an execution.
pub(crate) fn yield_if_active(label: &str) {
    if let Some(ctx) = current() {
        yield_point(&ctx, label);
    }
}

fn yield_point(ctx: &VCtx, label: &str) {
    let exec = &ctx.exec;
    let mut st = lock_state(exec);
    if st.aborted {
        drop(st);
        let _ = degraded();
        return;
    }
    st.threads[ctx.me].at = label.to_string();
    st.turn = Turn::Controller;
    let (st, ok) = park(exec, ctx.me, st);
    drop(st);
    if !ok {
        let _ = degraded();
    }
}

/// Virtually acquires mutex `idx`. Returns `true` when acquired (the
/// caller may then take the real lock uncontended) or `false` when the
/// execution aborted and the caller should degrade to plain `std`.
pub(crate) fn mutex_lock(ctx: &VCtx, idx: usize) -> bool {
    let exec = &ctx.exec;
    loop {
        let st = lock_state(exec);
        if st.aborted {
            drop(st);
            return degraded();
        }
        let mut st = {
            let mut st = st;
            st.threads[ctx.me].at = format!("mutex#{idx}.lock");
            st.turn = Turn::Controller;
            let (st, ok) = park(exec, ctx.me, st);
            if !ok {
                drop(st);
                return degraded();
            }
            st
        };
        if st.mutex_owners[idx].is_none() {
            st.mutex_owners[idx] = Some(ctx.me);
            return true;
        }
        // Held by someone else: block until an unlock wakes us, then
        // retry (contenders barge in scheduler-chosen order, exactly
        // like an OS mutex).
        st.threads[ctx.me].status = Status::BlockedMutex(idx);
        st.threads[ctx.me].at = format!("mutex#{idx}.blocked");
        st.turn = Turn::Controller;
        let (st, ok) = park(exec, ctx.me, st);
        drop(st);
        if !ok {
            return degraded();
        }
    }
}

fn wake_mutex_waiters(st: &mut SchedState, idx: usize) {
    for t in &mut st.threads {
        if t.status == Status::BlockedMutex(idx) {
            t.status = Status::Runnable;
        }
    }
}

/// Virtually releases mutex `idx`, waking every contender, and yields.
pub(crate) fn mutex_unlock(ctx: &VCtx, idx: usize) {
    let exec = &ctx.exec;
    let mut st = lock_state(exec);
    if st.aborted {
        drop(st);
        let _ = degraded();
        return;
    }
    st.mutex_owners[idx] = None;
    wake_mutex_waiters(&mut st, idx);
    drop(st);
    yield_point(ctx, &format!("mutex#{idx}.unlock"));
}

/// Virtually waits on condvar `cv`: releases mutex `midx`, parks until
/// a notify picks this thread, then reacquires the mutex. Returns
/// `false` when the execution aborted (caller degrades).
pub(crate) fn condvar_wait(ctx: &VCtx, cv: usize, midx: usize) -> bool {
    let exec = &ctx.exec;
    {
        let mut st = lock_state(exec);
        if st.aborted {
            drop(st);
            return degraded();
        }
        // Release the mutex and wake contenders; no separate scheduling
        // point is needed — the turn is handed over right here.
        st.mutex_owners[midx] = None;
        wake_mutex_waiters(&mut st, midx);
        st.threads[ctx.me].status = Status::BlockedCondvar(cv);
        st.threads[ctx.me].at = format!("condvar#{cv}.wait");
        st.turn = Turn::Controller;
        let (st, ok) = park(exec, ctx.me, st);
        drop(st);
        if !ok {
            return degraded();
        }
    }
    mutex_lock(ctx, midx)
}

/// Virtually notifies condvar `cv`. `notify_one` with several waiters
/// is a recorded nondeterministic choice (the woken thread is
/// scheduler-picked); with none it is lost, like a real condvar.
pub(crate) fn condvar_notify(ctx: &VCtx, cv: usize, all: bool) {
    let exec = &ctx.exec;
    let mut st = lock_state(exec);
    if st.aborted {
        drop(st);
        let _ = degraded();
        return;
    }
    let waiters: Vec<u32> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == Status::BlockedCondvar(cv))
        .map(|(i, _)| i as u32)
        .collect();
    if waiters.is_empty() {
        return;
    }
    if all {
        for &w in &waiters {
            st.threads[w as usize].status = Status::Runnable;
        }
        return;
    }
    let wi = if waiters.len() == 1 {
        0
    } else {
        let desc = format!("t{} condvar#{cv}.notify_one", ctx.me);
        choose(&mut st, DecisionKind::Wakeup, waiters.clone(), None, desc)
    };
    let w = waiters[wi] as usize;
    st.threads[w].status = Status::Runnable;
}

/// Blocks (in scheduler space) until virtual thread `vid` finishes.
pub(crate) fn join(ctx: &VCtx, vid: usize) {
    let exec = &ctx.exec;
    let mut st = lock_state(exec);
    if st.threads[vid].status == Status::Finished {
        return;
    }
    if st.aborted {
        drop(st);
        if std::thread::panicking() {
            return;
        }
        panic::panic_any(AbortToken);
    }
    st.threads[ctx.me].status = Status::BlockedJoin(vid);
    st.threads[ctx.me].at = format!("join t{vid}");
    st.turn = Turn::Controller;
    let (st, ok) = park(exec, ctx.me, st);
    drop(st);
    if !ok && !std::thread::panicking() {
        panic::panic_any(AbortToken);
    }
}

/// Entry point of every virtual thread: adopts the execution context,
/// waits for its first grant, runs `f`, and reports the outcome. All
/// panics are contained here — model assertions become the execution's
/// failure, abort tokens are swallowed.
pub(crate) fn vthread_main<F: FnOnce()>(exec: Arc<ExecInner>, me: usize, f: F) {
    install_quiet_hook();
    let prev_silenced = SILENCED.with(|s| s.replace(true));
    let prev_ctx = CONTEXT.with(|c| {
        c.replace(Some(VCtx {
            exec: Arc::clone(&exec),
            me,
        }))
    });
    let ready = {
        let st = lock_state(&exec);
        let (st, ok) = park(&exec, me, st);
        drop(st);
        ok
    };
    if ready {
        if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
            if !p.is::<AbortToken>() {
                let mut st = lock_state(&exec);
                if st.failure.is_none() {
                    st.failure = Some((FailureKind::Panic, payload_message(p.as_ref())));
                }
                st.aborted = true;
            }
        }
    } else {
        // Aborted before ever running: tear the closure's captures down
        // outside the execution context so their drops use plain `std`.
        CONTEXT.with(|c| *c.borrow_mut() = None);
        let _ = panic::catch_unwind(AssertUnwindSafe(move || drop(f)));
    }
    {
        let mut st = lock_state(&exec);
        st.threads[me].status = Status::Finished;
        st.threads[me].at = "finished".to_string();
        for t in &mut st.threads {
            if t.status == Status::BlockedJoin(me) {
                t.status = Status::Runnable;
            }
        }
        st.turn = Turn::Controller;
    }
    exec.cv.notify_all();
    CONTEXT.with(|c| *c.borrow_mut() = prev_ctx);
    SILENCED.with(|s| s.set(prev_silenced));
}

fn payload_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolves one nondeterministic choice: replays the forced prefix
/// first, then asks the policy. Returns the index into `enabled`.
fn choose(
    st: &mut SchedState,
    kind: DecisionKind,
    enabled: Vec<u32>,
    current_index: Option<u32>,
    desc: String,
) -> usize {
    let n = st.log.len();
    let pick = if n < st.strategy.prefix.len() {
        let p = st.strategy.prefix[n] as usize;
        if p >= enabled.len() {
            if st.failure.is_none() {
                st.failure = Some((
                    FailureKind::Divergence,
                    format!(
                        "replay diverged at decision {n}: choice {p} of {} enabled \
                         (is the model deterministic?)",
                        enabled.len()
                    ),
                ));
            }
            st.aborted = true;
            0
        } else {
            p
        }
    } else {
        match &mut st.strategy.policy {
            Policy::Run => current_index.map_or(0, |c| c as usize),
            Policy::Random(rng) => (rng.next_u64() % enabled.len() as u64) as usize,
        }
    };
    let preemptions_before = st.preemptions;
    if kind == DecisionKind::Schedule {
        if let Some(cur) = current_index {
            if pick != cur as usize {
                st.preemptions += 1;
            }
        }
    }
    st.log.push(DecisionRecord {
        kind,
        chosen: pick as u32,
        enabled,
        current_index,
        preemptions_before,
        desc,
    });
    pick
}

fn describe_blocked(st: &SchedState) -> String {
    let mut parts = Vec::new();
    for (i, t) in st.threads.iter().enumerate() {
        let what = match t.status {
            Status::Runnable | Status::Finished => continue,
            Status::BlockedMutex(m) => format!("mutex#{m}"),
            Status::BlockedCondvar(c) => format!("condvar#{c} (lost wakeup?)"),
            Status::BlockedJoin(j) => format!("join of t{j}"),
        };
        parts.push(format!("t{i}({}) waiting on {what}", t.name));
    }
    format!("every live thread is blocked: {}", parts.join("; "))
}

/// The controller: runs on the exploring thread, granting the turn to
/// one runnable virtual thread at a time until the execution finishes,
/// deadlocks, or aborts.
fn controller(exec: &ExecInner) {
    let mut st = lock_state(exec);
    loop {
        while st.turn != Turn::Controller && !st.aborted {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.aborted {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                return;
            }
            exec.cv.notify_all();
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            return;
        }
        let enabled: Vec<u32> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i as u32)
            .collect();
        if enabled.is_empty() {
            let detail = describe_blocked(&st);
            if st.failure.is_none() {
                st.failure = Some((FailureKind::Deadlock, detail));
            }
            st.aborted = true;
            exec.cv.notify_all();
            continue;
        }
        if st.log.len() >= st.max_decisions {
            if st.failure.is_none() {
                st.failure = Some((
                    FailureKind::DecisionLimit,
                    format!(
                        "exceeded {} scheduling decisions (livelock, or raise max_decisions)",
                        st.max_decisions
                    ),
                ));
            }
            st.aborted = true;
            exec.cv.notify_all();
            continue;
        }
        let current_index = enabled
            .iter()
            .position(|&t| t as usize == st.current)
            .map(|i| i as u32);
        let desc = format!("t{}@{}", st.current, st.threads[st.current].at);
        let pick = choose(
            &mut st,
            DecisionKind::Schedule,
            enabled.clone(),
            current_index,
            desc,
        );
        if st.aborted {
            exec.cv.notify_all();
            continue;
        }
        let tid = enabled[pick] as usize;
        st.current = tid;
        st.turn = Turn::Thread(tid);
        exec.cv.notify_all();
    }
}

struct RunOutcome {
    log: Vec<DecisionRecord>,
    failure: Option<(FailureKind, String)>,
}

/// Runs the model once under `strategy` and collects the decision log.
fn run_one<F: Fn() + Sync>(strategy: Strategy, max_decisions: usize, model: &F) -> RunOutcome {
    install_quiet_hook();
    static EXEC_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let exec = Arc::new(ExecInner {
        id: EXEC_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        state: StdMutex::new(SchedState {
            turn: Turn::Controller,
            aborted: false,
            current: 0,
            threads: vec![ThreadState {
                status: Status::Runnable,
                name: "main".to_string(),
                at: "start".to_string(),
            }],
            mutex_owners: Vec::new(),
            condvars: 0,
            log: Vec::new(),
            preemptions: 0,
            strategy,
            failure: None,
            max_decisions,
        }),
        cv: StdCondvar::new(),
    });
    std::thread::scope(|s| {
        let e = Arc::clone(&exec);
        s.spawn(move || vthread_main(e, 0, model));
        controller(&exec);
    });
    let mut st = lock_state(&exec);
    RunOutcome {
        log: std::mem::take(&mut st.log),
        failure: st.failure.take(),
    }
}

fn render_trace(log: &[DecisionRecord]) -> Vec<String> {
    log.iter()
        .enumerate()
        .map(|(i, d)| {
            let picked = d.enabled[d.chosen as usize];
            let kind = match d.kind {
                DecisionKind::Schedule => "run",
                DecisionKind::Wakeup => "wake",
            };
            format!(
                "{i:>4}: after {} -> {kind} t{picked} (choice {} of {:?}, {} preemptions)",
                d.desc, d.chosen, d.enabled, d.preemptions_before
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Public exploration API
// ---------------------------------------------------------------------

/// A replayable schedule: the decision sequence of one execution, plus
/// the seed when it came from a random run.
///
/// The text form is `seed=<u64 or -> choices=<comma-separated>`; see
/// [`Schedule::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Seed of the random run that produced this schedule, if any.
    pub seed: Option<u64>,
    /// Chosen alternative (index into the enabled set) at each decision.
    pub choices: Vec<u32>,
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seed {
            Some(s) => write!(f, "seed={s} ")?,
            None => write!(f, "seed=- ")?,
        }
        write!(f, "choices=")?;
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl Schedule {
    /// Parses the [`Display`](fmt::Display) form back into a schedule.
    pub fn parse(text: &str) -> Option<Schedule> {
        let mut seed = None;
        let mut choices = None;
        for part in text.split_whitespace() {
            if let Some(s) = part.strip_prefix("seed=") {
                seed = Some(if s == "-" {
                    None
                } else {
                    Some(s.parse().ok()?)
                });
            } else if let Some(c) = part.strip_prefix("choices=") {
                choices = Some(if c.is_empty() {
                    Vec::new()
                } else {
                    c.split(',')
                        .map(str::parse)
                        .collect::<Result<Vec<u32>, _>>()
                        .ok()?
                });
            }
        }
        Some(Schedule {
            seed: seed?,
            choices: choices?,
        })
    }
}

/// Why an execution failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Every live thread was blocked (includes lost wakeups).
    Deadlock,
    /// A model assertion (or any other panic) fired.
    Panic,
    /// The per-execution decision limit was exceeded (livelock guard).
    DecisionLimit,
    /// A replayed schedule no longer matched the model's decisions.
    Divergence,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::Deadlock => "deadlock",
            FailureKind::Panic => "panic",
            FailureKind::DecisionLimit => "decision limit",
            FailureKind::Divergence => "replay divergence",
        };
        f.write_str(s)
    }
}

/// A failing execution: what went wrong, the exact schedule that
/// reaches it, and a human-readable decision trace.
#[derive(Debug)]
pub struct Counterexample {
    /// Failure class.
    pub kind: FailureKind,
    /// Failure specifics (blocked-thread list, panic message, ...).
    pub detail: String,
    /// Minimal replayable schedule (decision trace + seed).
    pub schedule: Schedule,
    /// Rendered decision-by-decision trace.
    pub trace: Vec<String>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample: {} — {}", self.kind, self.detail)?;
        writeln!(f, "  replay: {}", self.schedule)?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Exploration statistics of a completed (or capped) search.
#[derive(Debug, Clone, Copy)]
pub struct ExploreStats {
    /// Executions (distinct schedules) run.
    pub executions: usize,
    /// Total scheduling decisions across all executions.
    pub decisions: u64,
    /// `true` when the execution budget ran out before the bounded
    /// space was exhausted.
    pub capped: bool,
    /// The preemption bound the search ran under.
    pub max_preemptions: u32,
}

/// Options for [`explore_dfs`].
#[derive(Debug, Clone, Copy)]
pub struct DfsOptions {
    /// Preemption bound: schedules with more preemptive context
    /// switches than this are not explored (CHESS-style context
    /// bounding — most concurrency bugs hide at very small bounds).
    pub max_preemptions: u32,
    /// Execution budget; the search reports `capped` when it runs out.
    pub max_executions: usize,
    /// Per-execution decision limit (livelock guard).
    pub max_decisions: usize,
}

impl Default for DfsOptions {
    fn default() -> Self {
        DfsOptions {
            max_preemptions: 2,
            max_executions: 20_000,
            max_decisions: 20_000,
        }
    }
}

/// Systematically explores every schedule of `model` with at most
/// `max_preemptions` preemptions, best-first by preemption count, so
/// the first counterexample returned is minimal in preemptions.
///
/// # Errors
///
/// Returns the first [`Counterexample`] found.
pub fn explore_dfs<F: Fn() + Sync>(
    opts: &DfsOptions,
    model: &F,
) -> Result<ExploreStats, Box<Counterexample>> {
    let mut stats = ExploreStats {
        executions: 0,
        decisions: 0,
        capped: false,
        max_preemptions: opts.max_preemptions,
    };
    // Frontier ordered by (preemptions, depth): uniform-cost search over
    // forced-choice prefixes.
    let mut frontier: BinaryHeap<Reverse<(u32, usize, Vec<u32>)>> = BinaryHeap::new();
    frontier.push(Reverse((0, 0, Vec::new())));
    while let Some(Reverse((_cost, _depth, prefix))) = frontier.pop() {
        if stats.executions >= opts.max_executions {
            stats.capped = true;
            break;
        }
        stats.executions += 1;
        let plen = prefix.len();
        let out = run_one(
            Strategy {
                prefix,
                policy: Policy::Run,
            },
            opts.max_decisions,
            model,
        );
        let log = match out.failure {
            None => out.log,
            Some((kind, detail)) => {
                return Err(Box::new(Counterexample {
                    kind,
                    detail,
                    schedule: Schedule {
                        seed: None,
                        choices: out.log.iter().map(|d| d.chosen).collect(),
                    },
                    trace: render_trace(&out.log),
                }))
            }
        };
        stats.decisions += log.len() as u64;
        // Branch on every untaken alternative past the forced prefix.
        for i in plen..log.len() {
            let d = &log[i];
            for alt in 0..d.enabled.len() as u32 {
                if alt == d.chosen {
                    continue;
                }
                let preempt = match (d.kind, d.current_index) {
                    (DecisionKind::Schedule, Some(cur)) if alt != cur => 1,
                    _ => 0,
                };
                let cost = d.preemptions_before + preempt;
                if cost > opts.max_preemptions {
                    continue;
                }
                let mut p: Vec<u32> = log[..i].iter().map(|r| r.chosen).collect();
                p.push(alt);
                let depth = p.len();
                frontier.push(Reverse((cost, depth, p)));
            }
        }
    }
    Ok(stats)
}

/// Options for [`explore_random`].
#[derive(Debug, Clone, Copy)]
pub struct RandomOptions {
    /// Number of random executions to run.
    pub runs: usize,
    /// Master seed; per-run seeds are derived from it, and a failing
    /// run's own seed is reported in its [`Schedule`].
    pub seed: u64,
    /// Per-execution decision limit (livelock guard).
    pub max_decisions: usize,
}

impl Default for RandomOptions {
    fn default() -> Self {
        RandomOptions {
            runs: 256,
            seed: 0x7e6d_7374_7265_616d,
            max_decisions: 20_000,
        }
    }
}

/// Runs `model` under `runs` independent seeded-random schedules.
/// Fully deterministic: the same options always explore the same
/// schedules.
///
/// # Errors
///
/// Returns the first [`Counterexample`] found.
pub fn explore_random<F: Fn() + Sync>(
    opts: &RandomOptions,
    model: &F,
) -> Result<ExploreStats, Box<Counterexample>> {
    let mut stats = ExploreStats {
        executions: 0,
        decisions: 0,
        capped: false,
        max_preemptions: 0,
    };
    let mut mix = SplitMix64::new(opts.seed);
    for _ in 0..opts.runs {
        let seed = mix.next_u64();
        stats.executions += 1;
        let report = run_random(seed, opts.max_decisions, model);
        stats.decisions += report.schedule.choices.len() as u64;
        if let Some(cx) = report.counterexample {
            return Err(cx);
        }
    }
    Ok(stats)
}

/// One execution's outcome: the schedule it took, its decision trace,
/// and the counterexample if it failed.
#[derive(Debug)]
pub struct RunReport {
    /// The schedule the execution followed (replayable).
    pub schedule: Schedule,
    /// Rendered decision-by-decision trace.
    pub trace: Vec<String>,
    /// The failure, when the execution did not pass.
    pub counterexample: Option<Box<Counterexample>>,
}

fn report_of(seed: Option<u64>, out: RunOutcome) -> RunReport {
    let schedule = Schedule {
        seed,
        choices: out.log.iter().map(|d| d.chosen).collect(),
    };
    let trace = render_trace(&out.log);
    let counterexample = out.failure.map(|(kind, detail)| {
        Box::new(Counterexample {
            kind,
            detail,
            schedule: schedule.clone(),
            trace: trace.clone(),
        })
    });
    RunReport {
        schedule,
        trace,
        counterexample,
    }
}

/// Runs `model` once under the seeded-random policy.
pub fn run_random<F: Fn() + Sync>(seed: u64, max_decisions: usize, model: &F) -> RunReport {
    let out = run_one(
        Strategy {
            prefix: Vec::new(),
            policy: Policy::Random(SplitMix64::new(seed)),
        },
        max_decisions,
        model,
    );
    report_of(Some(seed), out)
}

/// Replays `schedule` against `model`: forced choices first, then the
/// schedule's own policy (seeded random, or prefer-current) for any
/// decisions past the recorded ones.
pub fn run_with_schedule<F: Fn() + Sync>(
    schedule: &Schedule,
    max_decisions: usize,
    model: &F,
) -> RunReport {
    let policy = match schedule.seed {
        Some(s) => Policy::Random(SplitMix64::new(s)),
        None => Policy::Run,
    };
    let out = run_one(
        Strategy {
            prefix: schedule.choices.clone(),
            policy,
        },
        max_decisions,
        model,
    );
    report_of(schedule.seed, out)
}
