//! Synchronization shim: the runtime's single doorway to `std::sync`
//! and `std::thread`.
//!
//! Every blocking primitive the executor is built from — mutexes,
//! condition variables, atomics, thread spawning and scoping — is used
//! through this module rather than through `std` directly (the
//! `lint-sources` CI gate enforces it). In a normal build the wrappers
//! here are zero-cost delegations to `std`. When the crate is compiled
//! with the `schedcheck` feature *and* the current thread is running
//! inside a [`sched`] model-checking execution, the same wrappers
//! instead route every acquire, release, wait, notify, spawn, and join
//! through a cooperative single-threaded scheduler that owns every
//! interleaving decision — which is what lets `tempstream-schedcheck`
//! explore thread schedules systematically and replay failures
//! deterministically.
//!
//! Two deliberate semantic notes:
//!
//! * **Poisoning.** [`Mutex::lock`] panics when the lock is poisoned
//!   (the runtime treats a panic while holding an internal lock as
//!   fatal, exactly as the previous `.lock().expect(..)` call sites
//!   did) — except while the current thread is already unwinding, where
//!   it recovers the inner value instead so that `Drop` implementations
//!   never double-panic.
//! * **Relaxed atomics.** Operations with `Ordering::Relaxed` are not
//!   scheduling points under the model checker. The runtime only uses
//!   relaxed atomics for monotonic metrics (queue high-water marks,
//!   spill counters) and ID allocation, never for synchronization, so
//!   excluding them keeps the explored state space small without hiding
//!   real interleavings.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub use std::sync::{Arc, OnceLock};

#[cfg(feature = "schedcheck")]
pub mod sched;

pub mod atomic;
pub mod thread;

/// Locks a std mutex with the runtime's poisoning policy: panic with
/// `what` when poisoned, unless the thread is already unwinding (then
/// recover, so drops during a panic cannot abort the process).
fn lock_std<'a, T>(m: &'a std::sync::Mutex<T>, what: &str) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(e) if std::thread::panicking() => e.into_inner(),
        Err(_) => panic!("{what} poisoned"),
    }
}

/// A mutual-exclusion lock with the same surface as [`std::sync::Mutex`]
/// minus poisoning (see the module docs for the poisoning policy).
///
/// Under an active `schedcheck` execution, acquisition order is decided
/// by the model-checking scheduler instead of the OS.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    #[cfg(feature = "schedcheck")]
    tag: Option<sched::ObjectTag>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            #[cfg(feature = "schedcheck")]
            tag: sched::register_mutex(),
        }
    }

    /// Acquires the mutex, blocking until it is available.
    ///
    /// # Panics
    ///
    /// Panics if another thread panicked while holding the lock (unless
    /// the current thread is itself already unwinding).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "schedcheck")]
        if let Some(ctx) = sched::active_context(self.tag.as_ref()) {
            let idx = self.tag.as_ref().expect("tagged").index;
            if sched::mutex_lock(&ctx, idx) {
                let std = match self.inner.try_lock() {
                    Ok(g) => g,
                    Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        unreachable!("virtual mutex owner found the std mutex held")
                    }
                };
                return MutexGuard {
                    std: Some(std),
                    mutex: self,
                    #[cfg(feature = "schedcheck")]
                    virt: Some((ctx, idx)),
                };
            }
            // Execution aborted while this thread unwinds: degrade to a
            // plain std acquisition below.
        }
        MutexGuard {
            std: Some(lock_std(&self.inner, "mutex")),
            mutex: self,
            #[cfg(feature = "schedcheck")]
            virt: None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T> {
    /// `Some` for the guard's whole life; taken by drop/wait handoff.
    std: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
    #[cfg(feature = "schedcheck")]
    virt: Option<(sched::VCtx, usize)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard live")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard live")
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so the virtual release (which may
        // yield to the scheduler) never runs while the data is held.
        drop(self.std.take());
        #[cfg(feature = "schedcheck")]
        if let Some((ctx, idx)) = self.virt.take() {
            sched::mutex_unlock(&ctx, idx);
        }
    }
}

/// A condition variable with the same `wait`/`notify_one`/`notify_all`
/// surface as [`std::sync::Condvar`], paired with [`Mutex`].
///
/// The model-checking backend does not generate spurious wakeups; the
/// runtime's wait loops stay correct either way because they re-check
/// their predicate, as `std` requires.
pub struct Condvar {
    inner: std::sync::Condvar,
    #[cfg(feature = "schedcheck")]
    tag: Option<sched::ObjectTag>,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            #[cfg(feature = "schedcheck")]
            tag: sched::register_condvar(),
        }
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// reacquires the mutex.
    ///
    /// # Panics
    ///
    /// Panics if the mutex is poisoned (same policy as [`Mutex::lock`]).
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        #[cfg(feature = "schedcheck")]
        {
            let virt = guard.virt.take();
            if let (Some(tag), Some((ctx, midx))) = (self.tag.as_ref(), virt) {
                if sched::same_execution(&ctx, tag) {
                    // Virtual path: release the real lock, park on the
                    // virtual condvar, then reacquire both layers.
                    drop(guard.std.take());
                    drop(guard);
                    if sched::condvar_wait(&ctx, tag.index, midx) {
                        let std = match mutex.inner.try_lock() {
                            Ok(g) => g,
                            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                            Err(std::sync::TryLockError::WouldBlock) => {
                                unreachable!("virtual mutex owner found the std mutex held")
                            }
                        };
                        return MutexGuard {
                            std: Some(std),
                            mutex,
                            virt: Some((ctx, midx)),
                        };
                    }
                    // Aborted mid-wait while unwinding: hand back a
                    // plain std guard so drops stay well-formed.
                    return MutexGuard {
                        std: Some(lock_std(&mutex.inner, "mutex")),
                        mutex,
                        virt: None,
                    };
                }
                // Guard from a different (or no longer live) execution:
                // restore the marker and fall through to std.
                guard.virt = Some((ctx, midx));
            }
        }
        let std = guard.std.take().expect("guard live");
        drop(guard);
        let std = match self.inner.wait(std) {
            Ok(g) => g,
            Err(e) if std::thread::panicking() => e.into_inner(),
            Err(_) => panic!("condvar mutex poisoned"),
        };
        MutexGuard {
            std: Some(std),
            mutex,
            #[cfg(feature = "schedcheck")]
            virt: None,
        }
    }

    /// Wakes one thread blocked in [`wait`](Self::wait) on this condvar.
    pub fn notify_one(&self) {
        #[cfg(feature = "schedcheck")]
        if let Some(ctx) = sched::active_context(self.tag.as_ref()) {
            sched::condvar_notify(&ctx, self.tag.as_ref().expect("tagged").index, false);
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes every thread blocked in [`wait`](Self::wait) on this
    /// condvar.
    pub fn notify_all(&self) {
        #[cfg(feature = "schedcheck")]
        if let Some(ctx) = sched::active_context(self.tag.as_ref()) {
            sched::condvar_notify(&ctx, self.tag.as_ref().expect("tagged").index, true);
            return;
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}
