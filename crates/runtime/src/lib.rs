//! # tempstream-runtime
//!
//! A work-stealing parallel executor for the reproduction pipeline.
//!
//! The serial [`Experiment`](tempstream_core::Experiment) runs each
//! workload's emit → simulate → analyze stages back to back; this crate
//! runs the same pure stage functions (`tempstream_core::stages`) as a
//! DAG of typed jobs on a pool of worker threads:
//!
//! * [`pool`] — the work-stealing thread pool: per-worker deques
//!   (owner pops LIFO, thieves steal FIFO) plus a shared injector
//!   queue, built on `std::thread` only.
//! * [`deque`] — the work-stealing deque the pool is built from.
//! * [`channel`] — a bounded MPMC channel; the emit→simulate link,
//!   and the executor's source of backpressure.
//! * [`spill`] — a spill-to-disk trace store in the `TSMT` binary
//!   format, so collected traces larger than the analysis cap page out
//!   of memory between the simulate and analyze stages.
//! * [`metrics`] — per-stage wall-clock and queue-depth accounting.
//! * [`pipeline`] — the reproduction DAG itself and its ordinal-keyed
//!   deterministic reduction.
//! * [`sync`] — the synchronization shim every other module goes
//!   through: `std` delegation in normal builds, and (behind the
//!   `schedcheck` feature) the cooperative scheduler that lets
//!   `tempstream-schedcheck` model-check the executor's interleavings.
//!
//! The headline guarantee: [`pipeline::run_workloads`] returns results
//! **bit-identical** to the serial runner for any worker count. See the
//! [`pipeline`] module docs for the argument.

pub mod channel;
pub mod deque;
pub mod metrics;
pub mod pipeline;
pub mod pool;
pub mod spill;
pub mod sync;

pub use metrics::{RunMetrics, RunSummary, Stage};
pub use pipeline::{run_all, run_workloads, AnalysisKind, Context, JobSpec, RuntimeConfig};
pub use spill::{SharedTrace, TraceStore};

// The executor moves these across worker threads; keep the bounds
// checked at compile time (see `tempstream_trace::assert_send_sync!`).
tempstream_trace::assert_send_sync!(
    JobSpec,
    Context,
    AnalysisKind,
    RuntimeConfig,
    RunMetrics,
    RunSummary,
    TraceStore,
    SharedTrace<tempstream_trace::MissClass>,
    SharedTrace<tempstream_trace::IntraChipClass>,
    channel::Sender<Vec<tempstream_trace::MemoryAccess>>,
    channel::Receiver<Vec<tempstream_trace::MemoryAccess>>,
);
