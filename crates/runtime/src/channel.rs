//! A bounded multi-producer / multi-consumer channel.
//!
//! The pipeline's emit stage streams access batches to its simulate
//! stage through one of these; the bound is what gives the executor
//! backpressure — a fast generator blocks once `capacity` batches are
//! in flight instead of ballooning RSS. Built on the [`crate::sync`]
//! `Mutex` + `Condvar` shims (the workspace is registry-dependency-free
//! and forbids `unsafe`), which is what lets `tempstream-schedcheck`
//! model-check this channel's interleavings.

use crate::sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    max_depth: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

/// The sending half of a bounded channel; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a bounded channel; cloneable.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone;
/// carries the unsent value back to the caller.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Creates a bounded channel holding at most `capacity` in-flight items
/// (clamped to at least 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            max_depth: 0,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity: capacity.max(1),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value inside [`SendError`] if every receiver has been
    /// dropped (now or while blocked).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < self.chan.capacity {
                state.queue.push_back(value);
                let depth = state.queue.len();
                if depth > state.max_depth {
                    state.max_depth = depth;
                }
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            state = self.chan.not_full.wait(state);
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next value, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.state.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.not_empty.wait(state);
        }
    }

    /// Receives every queued value into `buf` under a single lock
    /// acquisition, blocking while the channel is empty.
    ///
    /// Returns the number of values appended. Draining the whole queue
    /// per lock amortizes the mutex hand-off that a `recv`-per-item
    /// loop pays, and wakes *all* blocked senders at once since up to
    /// `capacity` slots just opened.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has been dropped.
    pub fn recv_many(&self, buf: &mut Vec<T>) -> Result<usize, RecvError> {
        let mut state = self.chan.state.lock();
        loop {
            if !state.queue.is_empty() {
                let n = state.queue.len();
                buf.extend(state.queue.drain(..));
                self.chan.not_full.notify_all();
                return Ok(n);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.not_empty.wait(state);
        }
    }

    /// High-water mark of in-flight items over the channel's lifetime.
    pub fn max_depth(&self) -> usize {
        self.chan.state.lock().max_depth
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock();
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers so they observe disconnection.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they observe disconnection.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receivers_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn capacity_applies_backpressure() {
        let (tx, rx) = bounded(2);
        let sent = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                    sent.fetch_add(1, Ordering::SeqCst);
                }
            });
            // The producer can run at most `capacity` ahead of the consumer.
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
                assert!(sent.load(Ordering::SeqCst) <= i + 1 + 2);
            }
        });
        assert!(rx.max_depth() <= 2, "bound violated: {}", rx.max_depth());
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(move || tx.send(1));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(h.join().unwrap().is_err());
        });
    }

    #[test]
    fn recv_many_drains_queue_in_order() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let mut buf = Vec::new();
        assert_eq!(rx.recv_many(&mut buf), Ok(5));
        assert_eq!(buf, vec![0, 1, 2, 3, 4]);
        // Appends, never clears: caller owns the buffer lifecycle.
        tx.send(9).unwrap();
        assert_eq!(rx.recv_many(&mut buf), Ok(1));
        assert_eq!(buf, vec![0, 1, 2, 3, 4, 9]);
    }

    #[test]
    fn recv_many_errors_after_senders_drop() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(1).unwrap();
        drop(tx);
        let mut buf = Vec::new();
        assert_eq!(rx.recv_many(&mut buf), Ok(1));
        assert_eq!(rx.recv_many(&mut buf), Err(RecvError));
        assert_eq!(buf, vec![1]);
    }

    #[test]
    fn recv_many_wakes_all_blocked_senders() {
        // Four producers block on a full capacity-2 channel; one drain
        // must free every slot and wake them all, not just one.
        let (tx, rx) = bounded(2);
        let produced = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let tx = tx.clone();
                let produced = &produced;
                s.spawn(move || {
                    for i in 0..50 {
                        tx.send(t * 1000 + i).unwrap();
                        produced.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            drop(tx);
            let mut buf = Vec::new();
            while rx.recv_many(&mut buf).is_ok() {}
            assert_eq!(buf.len(), 200);
        });
        assert_eq!(produced.load(Ordering::SeqCst), 200);
        assert!(rx.max_depth() <= 2, "bound violated: {}", rx.max_depth());
    }

    #[test]
    fn mpmc_contended_delivers_each_item_exactly_once() {
        // 4 producers × 4 consumers over a tiny buffer: every item is
        // delivered to exactly one consumer (sum check), the capacity
        // bound holds throughout, and every side observes disconnect.
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 250;
        let (tx, rx) = bounded(3);
        let received = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.send(p * PER_PRODUCER + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..CONSUMERS {
                let rx = rx.clone();
                let received = &received;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    while let Ok(v) = rx.recv() {
                        mine.push(v);
                    }
                    received.lock().extend(mine);
                });
            }
        });
        let mut all = received.lock().clone();
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER);
        all.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected, "items lost or duplicated under contention");
        assert!(rx.max_depth() <= 3, "bound violated: {}", rx.max_depth());
    }

    #[test]
    fn per_sender_fifo_survives_contention() {
        // MPMC makes no global ordering promise, but each producer's
        // items must still arrive in that producer's send order.
        let (tx, rx) = bounded(2);
        std::thread::scope(|s| {
            for p in 0..3usize {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send((p, i)).unwrap();
                    }
                });
            }
            drop(tx);
            let mut next = [0usize; 3];
            let mut buf = Vec::new();
            while rx.recv_many(&mut buf).is_ok() {
                for (p, i) in buf.drain(..) {
                    assert_eq!(i, next[p], "producer {p} items reordered");
                    next[p] += 1;
                }
            }
            assert_eq!(next, [100, 100, 100]);
        });
    }

    #[test]
    fn receiver_drop_unblocks_every_contending_sender() {
        // Several senders blocked on a full channel must all error out
        // when the last receiver goes away, not deadlock.
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let tx = tx.clone();
                    s.spawn(move || tx.send(1))
                })
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            for h in handles {
                assert!(h.join().unwrap().is_err(), "blocked sender must error");
            }
        });
    }

    #[test]
    fn multi_consumer_partitions_items() {
        let (tx, rx) = bounded(4);
        let rx2 = rx.clone();
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let t = &total;
            s.spawn(move || {
                while let Ok(v) = rx.recv() {
                    t.fetch_add(v, Ordering::SeqCst);
                }
            });
            s.spawn(move || {
                while let Ok(v) = rx2.recv() {
                    t.fetch_add(v, Ordering::SeqCst);
                }
            });
            for i in 1..=100usize {
                tx.send(i).unwrap();
            }
            drop(tx);
        });
        assert_eq!(total.load(Ordering::SeqCst), 5050);
    }
}
