//! A bounded multi-producer / multi-consumer channel.
//!
//! The pipeline's emit stage streams access batches to its simulate
//! stage through one of these; the bound is what gives the executor
//! backpressure — a fast generator blocks once `capacity` batches are
//! in flight instead of ballooning RSS. Built on `Mutex` + `Condvar`
//! (the workspace is registry-dependency-free and forbids `unsafe`).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    max_depth: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

/// The sending half of a bounded channel; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a bounded channel; cloneable.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone;
/// carries the unsent value back to the caller.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Creates a bounded channel holding at most `capacity` in-flight items
/// (clamped to at least 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            max_depth: 0,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity: capacity.max(1),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value inside [`SendError`] if every receiver has been
    /// dropped (now or while blocked).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < self.chan.capacity {
                state.queue.push_back(value);
                let depth = state.queue.len();
                if depth > state.max_depth {
                    state.max_depth = depth;
                }
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            state = self.chan.not_full.wait(state).expect("channel poisoned");
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next value, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.state.lock().expect("channel poisoned");
        loop {
            if let Some(v) = state.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// High-water mark of in-flight items over the channel's lifetime.
    pub fn max_depth(&self) -> usize {
        self.chan.state.lock().expect("channel poisoned").max_depth
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers so they observe disconnection.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they observe disconnection.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receivers_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn capacity_applies_backpressure() {
        let (tx, rx) = bounded(2);
        let sent = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                    sent.fetch_add(1, Ordering::SeqCst);
                }
            });
            // The producer can run at most `capacity` ahead of the consumer.
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
                assert!(sent.load(Ordering::SeqCst) <= i + 1 + 2);
            }
        });
        assert!(rx.max_depth() <= 2, "bound violated: {}", rx.max_depth());
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(move || tx.send(1));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(h.join().unwrap().is_err());
        });
    }

    #[test]
    fn multi_consumer_partitions_items() {
        let (tx, rx) = bounded(4);
        let rx2 = rx.clone();
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let t = &total;
            s.spawn(move || {
                while let Ok(v) = rx.recv() {
                    t.fetch_add(v, Ordering::SeqCst);
                }
            });
            s.spawn(move || {
                while let Ok(v) = rx2.recv() {
                    t.fetch_add(v, Ordering::SeqCst);
                }
            });
            for i in 1..=100usize {
                tx.send(i).unwrap();
            }
            drop(tx);
        });
        assert_eq!(total.load(Ordering::SeqCst), 5050);
    }
}
