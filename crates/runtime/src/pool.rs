//! The work-stealing thread-pool executor.
//!
//! [`scope`] spawns a fixed set of workers (plain `std::thread`s — the
//! workspace is registry-dependency-free) and hands the caller a
//! [`Pool`] to spawn jobs on. Each worker owns a [`WorkDeque`]: it pops
//! its own newest job first (LIFO, cache-hot), then steals the oldest
//! job from the shared injector or a sibling (FIFO). Jobs receive a
//! [`Worker`] handle and may spawn further jobs, which is how the
//! pipeline unfolds its DAG dynamically: a simulate job schedules its
//! analyze jobs the moment its trace is ready.
//!
//! A panicking job does not wedge the pool: the panic payload is
//! parked, remaining jobs still run, and the first payload is re-raised
//! on the thread that called [`scope`] once the pool drains.

use crate::deque::WorkDeque;
use crate::sync::thread::{self, ScopedTask};
use crate::sync::{Condvar, Mutex};
use std::panic::AssertUnwindSafe;

type Job<'env> = Box<dyn for<'w> FnOnce(&'w Worker<'w, 'env>) + Send + 'env>;

struct PoolState {
    /// Jobs spawned but not yet finished (queued or running).
    pending: usize,
    /// Set once the owning scope is tearing down; workers exit.
    shutdown: bool,
    /// First panic payload raised by a job, re-raised by [`scope`].
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// A work-stealing pool of `workers` threads, valid for one [`scope`].
pub struct Pool<'env> {
    injector: WorkDeque<Job<'env>>,
    deques: Vec<WorkDeque<Job<'env>>>,
    sync: Mutex<PoolState>,
    work_ready: Condvar,
    quiesced: Condvar,
}

/// A running worker's view of the pool, passed to every job.
pub struct Worker<'pool, 'env> {
    pool: &'pool Pool<'env>,
    index: usize,
}

impl<'env> Pool<'env> {
    fn new(workers: usize) -> Self {
        Pool {
            injector: WorkDeque::new(),
            deques: (0..workers).map(|_| WorkDeque::new()).collect(),
            sync: Mutex::new(PoolState {
                pending: 0,
                shutdown: false,
                panic: None,
            }),
            work_ready: Condvar::new(),
            quiesced: Condvar::new(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Spawns a job onto the shared injector queue.
    pub fn spawn<F>(&self, job: F)
    where
        F: for<'w> FnOnce(&'w Worker<'w, 'env>) + Send + 'env,
    {
        self.spawn_onto(&self.injector, Box::new(job));
    }

    fn spawn_onto(&self, deque: &WorkDeque<Job<'env>>, job: Job<'env>) {
        // One lock acquisition covers both the pending bump and the
        // notify: pushing while the lock is held pairs with the
        // sleeper's check-then-wait — a sleeper holding the lock either
        // sees the pushed job or is on the condvar before this notify
        // fires. (The deque has its own internal lock; the nesting
        // order pool-then-deque is used nowhere else, so no deadlock.)
        let mut state = self.sync.lock();
        state.pending += 1;
        deque.push(job);
        self.work_ready.notify_one();
    }

    /// Blocks until every spawned job (including jobs spawned by jobs)
    /// has finished.
    pub fn join(&self) {
        let mut state = self.sync.lock();
        while state.pending > 0 {
            state = self.quiesced.wait(state);
        }
    }

    /// High-water mark of the injector queue depth.
    pub fn injector_max_depth(&self) -> usize {
        self.injector.max_depth()
    }

    /// High-water mark across the per-worker deques.
    pub fn worker_max_depth(&self) -> usize {
        self.deques
            .iter()
            .map(WorkDeque::max_depth)
            .max()
            .unwrap_or(0)
    }

    fn find_job(&self, index: usize) -> Option<Job<'env>> {
        if let Some(job) = self.deques[index].pop() {
            return Some(job);
        }
        if let Some(job) = self.injector.steal() {
            return Some(job);
        }
        let n = self.deques.len();
        for off in 1..n {
            if let Some(job) = self.deques[(index + off) % n].steal() {
                return Some(job);
            }
        }
        None
    }

    fn finish_job(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.sync.lock();
        state.pending -= 1;
        if state.panic.is_none() {
            if let Some(p) = panic {
                state.panic = Some(p);
            }
        }
        if state.pending == 0 {
            self.quiesced.notify_all();
        }
    }

    fn worker_loop(&self, index: usize) {
        loop {
            if let Some(job) = self.find_job(index) {
                let worker = Worker { pool: self, index };
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| job(&worker)));
                self.finish_job(outcome.err());
                continue;
            }
            let state = self.sync.lock();
            // Re-check under the lock: a spawner that pushed before we
            // acquired the lock is visible now; one that pushes after
            // will notify after we are on the condvar.
            if self.has_visible_work() {
                continue;
            }
            if state.shutdown {
                return;
            }
            drop(self.work_ready.wait(state));
        }
    }

    fn has_visible_work(&self) -> bool {
        !self.injector.is_empty() || self.deques.iter().any(|d| !d.is_empty())
    }

    fn shutdown(&self) {
        let mut state = self.sync.lock();
        state.shutdown = true;
        self.work_ready.notify_all();
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.sync.lock().panic.take()
    }
}

impl<'pool, 'env> Worker<'pool, 'env> {
    /// Spawns a dependent job onto this worker's own deque (LIFO); idle
    /// siblings steal it from the FIFO end.
    pub fn spawn<F>(&self, job: F)
    where
        F: for<'w> FnOnce(&'w Worker<'w, 'env>) + Send + 'env,
    {
        self.pool
            .spawn_onto(&self.pool.deques[self.index], Box::new(job));
    }

    /// This worker's index in `0..workers`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The owning pool.
    pub fn pool(&self) -> &'pool Pool<'env> {
        self.pool
    }
}

/// Runs `f` with a live pool of `workers` threads (clamped to at least
/// one), then drains every spawned job before returning `f`'s result.
///
/// If any job panicked, the first panic is re-raised here after the
/// remaining jobs have run.
pub fn scope<'env, T>(workers: usize, f: impl FnOnce(&Pool<'env>) -> T) -> T {
    let pool = Pool::new(workers.max(1));
    let tasks: Vec<ScopedTask<'_>> = (0..pool.workers())
        .map(|i| {
            let p = &pool;
            Box::new(move || p.worker_loop(i)) as ScopedTask<'_>
        })
        .collect();
    let out = thread::scope_with(tasks, || {
        let out = f(&pool);
        pool.join();
        pool.shutdown();
        out
    });
    if let Some(p) = pool.take_panic() {
        std::panic::resume_unwind(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_any_worker_count() {
        for workers in [1, 2, 4, 8] {
            let count = AtomicUsize::new(0);
            scope(workers, |pool| {
                for _ in 0..100 {
                    pool.spawn(|_| {
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(count.load(Ordering::SeqCst), 100, "{workers} workers");
        }
    }

    #[test]
    fn jobs_spawn_dependent_jobs() {
        // A binary fan-out tree: each level-n job spawns two level-(n+1)
        // jobs; all leaves must run before scope returns.
        let leaves = AtomicUsize::new(0);
        fn spawn_tree<'env>(w: &Worker<'_, 'env>, depth: usize, leaves: &'env AtomicUsize) {
            if depth == 0 {
                leaves.fetch_add(1, Ordering::SeqCst);
                return;
            }
            for _ in 0..2 {
                w.spawn(move |w| spawn_tree(w, depth - 1, leaves));
            }
        }
        scope(3, |pool| {
            let l = &leaves;
            pool.spawn(move |w| spawn_tree(w, 6, l));
        });
        assert_eq!(leaves.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn work_is_actually_stolen() {
        // One job spawned from a worker deque fans out 64 more; with 4
        // workers at least one other worker must have executed some.
        let seen = Mutex::new(std::collections::HashSet::new());
        scope(4, |pool| {
            let seen = &seen;
            pool.spawn(move |w| {
                for _ in 0..64 {
                    w.spawn(move |w2| {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        seen.lock().insert(w2.index());
                    });
                }
            });
        });
        // Not guaranteed deterministically, but with 64 sleeping jobs and
        // 4 workers a single worker executing all of them would require
        // every steal to fail; accept >= 1 and record depth instead.
        assert!(!seen.lock().is_empty());
    }

    #[test]
    fn join_inside_scope_waits_for_quiesce() {
        let done = AtomicUsize::new(0);
        scope(2, |pool| {
            for _ in 0..10 {
                pool.spawn(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.join();
            assert_eq!(done.load(Ordering::SeqCst), 10);
        });
    }

    #[test]
    fn panicking_job_propagates_after_drain() {
        let survivors = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope(2, |pool| {
                pool.spawn(|_| panic!("boom"));
                for _ in 0..8 {
                    pool.spawn(|_| {
                        survivors.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate out of scope");
        assert_eq!(
            survivors.load(Ordering::SeqCst),
            8,
            "other jobs still ran to completion"
        );
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope(2, |pool| {
            pool.spawn(|_| {});
            42
        });
        assert_eq!(v, 42);
    }
}
