//! Spill-to-disk storage for miss traces between pipeline stages.
//!
//! The simulate stage can finish long before the analyze stages drain a
//! trace, and a full-scale run holds several multi-million-record
//! traces at once. A [`TraceStore`] keeps small traces in memory but
//! pages traces larger than its threshold out to disk in the existing
//! `TSMT` binary format (`tempstream_trace::io`), so peak RSS stays
//! bounded by the analysis cap rather than by total trace volume.
//! [`SharedTrace`] lazily reloads a spilled trace the first time an
//! analyze job touches it and caches it for the context's remaining
//! jobs; dropping the last handle frees the memory again.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use tempstream_trace::io::{read_trace, write_trace, TraceClass};
use tempstream_trace::MissTrace;

/// A directory of spilled traces, removed on drop.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    threshold: usize,
    next_id: AtomicU64,
    spilled_traces: AtomicUsize,
    spilled_bytes: AtomicU64,
}

impl TraceStore {
    /// Creates a store that spills traces holding more than `threshold`
    /// records. The backing directory lives under the system temp dir
    /// and is deleted when the store drops.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the backing directory.
    pub fn new(threshold: usize) -> std::io::Result<Self> {
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tempstream-spill-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(TraceStore {
            dir,
            threshold,
            next_id: AtomicU64::new(0),
            spilled_traces: AtomicUsize::new(0),
            spilled_bytes: AtomicU64::new(0),
        })
    }

    /// Record-count threshold above which a trace spills to disk.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Stores `trace`, spilling it to disk when it exceeds the
    /// threshold; the returned [`SharedTrace`] reloads it on demand.
    ///
    /// # Errors
    ///
    /// Returns any error from writing the spill file.
    pub fn put<C: TraceClass>(&self, trace: MissTrace<C>) -> std::io::Result<SharedTrace<C>> {
        if trace.len() <= self.threshold {
            return Ok(SharedTrace::in_memory(trace));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("t{id}.tsmt"));
        let file = File::create(&path)?;
        let mut w = BufWriter::new(file);
        write_trace(&trace, &mut w)?;
        std::io::Write::flush(&mut w)?;
        let bytes = w.get_ref().metadata().map_or(0, |m| m.len());
        self.spilled_traces.fetch_add(1, Ordering::Relaxed);
        self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(SharedTrace::on_disk(path))
    }

    /// Number of traces spilled to disk so far.
    pub fn spilled_traces(&self) -> usize {
        self.spilled_traces.load(Ordering::Relaxed)
    }

    /// Total bytes written to spill files so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }
}

impl Drop for TraceStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A trace held either in memory or in a spill file, loaded lazily and
/// at most once; cheap to share across analyze jobs behind an `Arc`.
#[derive(Debug)]
pub struct SharedTrace<C: TraceClass> {
    spill_path: Option<PathBuf>,
    cache: OnceLock<MissTrace<C>>,
}

impl<C: TraceClass> SharedTrace<C> {
    fn in_memory(trace: MissTrace<C>) -> Self {
        let cache = OnceLock::new();
        let _ = cache.set(trace);
        SharedTrace {
            spill_path: None,
            cache,
        }
    }

    fn on_disk(path: PathBuf) -> Self {
        SharedTrace {
            spill_path: Some(path),
            cache: OnceLock::new(),
        }
    }

    /// Returns `true` when the trace lives in a spill file that has not
    /// been reloaded yet.
    pub fn is_spilled(&self) -> bool {
        self.spill_path.is_some() && self.cache.get().is_none()
    }

    /// The trace, reloading it from the spill file on first touch.
    ///
    /// # Panics
    ///
    /// Panics if the spill file cannot be read back — the store owns the
    /// file for the run's lifetime, so this only happens on real I/O
    /// failure, which is fatal to the experiment anyway.
    pub fn trace(&self) -> &MissTrace<C> {
        self.cache.get_or_init(|| {
            let path = self
                .spill_path
                .as_ref()
                .expect("in-memory SharedTrace always has a cached trace");
            let file = File::open(path)
                .unwrap_or_else(|e| panic!("spill file {} vanished: {e}", path.display()));
            read_trace(BufReader::new(file))
                .unwrap_or_else(|e| panic!("spill file {} corrupt: {e}", path.display()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::miss::MissRecord;
    use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

    fn trace_of(len: usize) -> MissTrace<MissClass> {
        let mut t = MissTrace::new(4);
        t.set_instructions(777);
        for i in 0..len {
            t.push(MissRecord {
                block: Block::new(i as u64 * 11),
                cpu: CpuId::new((i % 4) as u32),
                thread: ThreadId::new(i as u32),
                function: FunctionId::new((i % 5) as u32),
                class: MissClass::from_byte((i % 4) as u8).unwrap(),
            });
        }
        t
    }

    #[test]
    fn small_traces_stay_in_memory() {
        let store = TraceStore::new(100).unwrap();
        let shared = store.put(trace_of(50)).unwrap();
        assert!(!shared.is_spilled());
        assert_eq!(store.spilled_traces(), 0);
        assert_eq!(shared.trace().len(), 50);
    }

    #[test]
    fn large_traces_spill_and_reload_identically() {
        let store = TraceStore::new(100).unwrap();
        let original = trace_of(500);
        let records: Vec<_> = original.records().to_vec();
        let shared = store.put(original).unwrap();
        assert!(shared.is_spilled(), "trace above threshold must page out");
        assert_eq!(store.spilled_traces(), 1);
        assert!(store.spilled_bytes() > 0);

        let loaded = shared.trace();
        assert_eq!(loaded.records(), &records[..]);
        assert_eq!(loaded.instructions(), 777);
        assert_eq!(loaded.num_cpus(), 4);
        assert!(!shared.is_spilled(), "reload caches the trace");
        // Second access hits the cache, not the file.
        assert_eq!(shared.trace().len(), 500);
    }

    #[test]
    fn store_drop_removes_spill_dir() {
        let dir;
        {
            let store = TraceStore::new(0).unwrap();
            let shared = store.put(trace_of(10)).unwrap();
            assert!(shared.is_spilled());
            dir = store.dir.clone();
            assert!(dir.exists());
            let _ = shared.trace();
        }
        assert!(!dir.exists(), "spill dir must be cleaned up");
    }

    #[test]
    fn concurrent_puts_get_distinct_files() {
        let store = TraceStore::new(0).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let st = &store;
                s.spawn(move || {
                    for _ in 0..8 {
                        let shared = st.put(trace_of(20)).unwrap();
                        assert_eq!(shared.trace().len(), 20);
                    }
                });
            }
        });
        assert_eq!(store.spilled_traces(), 32);
    }
}
