//! Spill-to-disk storage for miss traces between pipeline stages.
//!
//! The simulate stage can finish long before the analyze stages drain a
//! trace, and a full-scale run holds several multi-million-record
//! traces at once. A [`TraceStore`] keeps small traces in memory but
//! pages traces larger than its threshold out to disk in the existing
//! `TSMT` binary format (`tempstream_trace::io`), so peak RSS stays
//! bounded by the analysis cap rather than by total trace volume.
//!
//! Spill writes happen on a dedicated writer thread: [`TraceStore::put`]
//! enqueues the serialization and returns immediately, so a simulate
//! worker never stalls on disk I/O. While the write is in flight the
//! trace stays readable in memory; once it lands, the resident copy is
//! dropped (unless an analyze job already claimed it). [`SharedTrace`]
//! lazily reloads a spilled trace the first time an analyze job touches
//! it and caches it for the context's remaining jobs; dropping the last
//! handle frees the memory again. [`TraceStore::flush`] waits for every
//! queued write, which pins down the spill counters before reporting.

use crate::channel::{self, Sender};
use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{thread, Arc, Condvar, Mutex, OnceLock};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use tempstream_trace::io::{read_trace, write_trace, ReadTraceError, TraceClass};
use tempstream_trace::MissTrace;

/// A queued spill write, run on the writer thread.
type SpillJob = Box<dyn FnOnce() + Send>;

/// Bound on queued spill jobs; a simulate stage that outruns the disk
/// this far blocks in [`TraceStore::put`] rather than queueing without
/// limit. (The traces themselves are held by their [`SharedTrace`]s
/// either way; this only bounds the job queue.)
const WRITER_QUEUE_DEPTH: usize = 8;

/// Spill statistics, shared between the store and its writer thread.
#[derive(Debug, Default)]
struct SpillCounters {
    spilled_traces: AtomicUsize,
    spilled_bytes: AtomicU64,
    spill_fallbacks: AtomicUsize,
}

/// Count of in-flight spill writes, with a condvar for [`TraceStore::flush`].
#[derive(Debug, Default)]
struct PendingWrites {
    count: Mutex<usize>,
    drained: Condvar,
}

impl PendingWrites {
    fn begin(&self) {
        *self.count.lock() += 1;
    }

    fn end(&self) {
        let mut n = self.count.lock();
        *n -= 1;
        if *n == 0 {
            self.drained.notify_all();
        }
    }

    fn wait_drained(&self) {
        let mut n = self.count.lock();
        while *n > 0 {
            n = self.drained.wait(n);
        }
    }
}

/// A directory of spilled traces, removed on drop.
pub struct TraceStore {
    dir: PathBuf,
    threshold: usize,
    next_id: AtomicU64,
    counters: Arc<SpillCounters>,
    pending: Arc<PendingWrites>,
    tx: Option<Sender<SpillJob>>,
    writer: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("dir", &self.dir)
            .field("threshold", &self.threshold)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl TraceStore {
    /// Creates a store that spills traces holding more than `threshold`
    /// records. The backing directory lives under the system temp dir
    /// and is deleted when the store drops; the drop also joins the
    /// writer thread, so every queued spill completes first.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the backing directory.
    pub fn new(threshold: usize) -> std::io::Result<Self> {
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tempstream-spill-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let (tx, rx) = channel::bounded::<SpillJob>(WRITER_QUEUE_DEPTH);
        let writer = thread::Builder::new()
            .name("tempstream-spill".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            })?;
        Ok(TraceStore {
            dir,
            threshold,
            next_id: AtomicU64::new(0),
            counters: Arc::new(SpillCounters::default()),
            pending: Arc::new(PendingWrites::default()),
            tx: Some(tx),
            writer: Some(writer),
        })
    }

    /// Record-count threshold above which a trace spills to disk.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Stores `trace`, scheduling a spill to disk when it exceeds the
    /// threshold; the returned [`SharedTrace`] reads from memory while
    /// the write is in flight and reloads from disk afterwards.
    ///
    /// Never fails: if the spill file cannot be written (disk full,
    /// directory removed), the partial file is discarded and the trace
    /// stays in memory — a pipeline run degrades to higher RSS instead
    /// of aborting. Such fallbacks are counted in
    /// [`spill_fallbacks`](Self::spill_fallbacks).
    pub fn put<C>(&self, trace: MissTrace<C>) -> SharedTrace<C>
    where
        C: TraceClass + Send + Sync + 'static,
    {
        if trace.len() <= self.threshold {
            return SharedTrace::resident(trace);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("t{id}.tsmt"));
        let trace = Arc::new(trace);
        let shared = SharedTrace::writing(trace.clone(), path.clone());
        let inner = Arc::clone(&shared.inner);
        let counters = Arc::clone(&self.counters);
        let pending = Arc::clone(&self.pending);
        pending.begin();
        let job: SpillJob = Box::new(move || {
            match write_spill(&trace, &path) {
                Ok(bytes) => {
                    counters.spilled_traces.fetch_add(1, Ordering::Relaxed);
                    counters.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
                    *inner.state.lock() = SpillState::OnDisk;
                }
                Err(e) => {
                    eprintln!(
                        "warning: spill write to {} failed ({e}); keeping trace in memory",
                        path.display()
                    );
                    let _ = std::fs::remove_file(&path);
                    counters.spill_fallbacks.fetch_add(1, Ordering::Relaxed);
                    *inner.state.lock() = SpillState::Resident(trace);
                }
            }
            pending.end();
        });
        let tx = self.tx.as_ref().expect("writer alive while store exists");
        if let Err(channel::SendError(job)) = tx.send(job) {
            // The writer thread died (it only exits when the store
            // drops); run the spill inline so nothing is lost.
            job();
        }
        shared
    }

    /// Blocks until every queued spill write has completed, pinning
    /// down [`spilled_traces`](Self::spilled_traces) and friends.
    pub fn flush(&self) {
        self.pending.wait_drained();
    }

    /// Number of traces spilled to disk so far (spills still queued on
    /// the writer thread are not yet counted; [`flush`](Self::flush)
    /// first for an exact figure).
    pub fn spilled_traces(&self) -> usize {
        self.counters.spilled_traces.load(Ordering::Relaxed)
    }

    /// Number of oversized traces kept in memory because their spill
    /// write failed.
    pub fn spill_fallbacks(&self) -> usize {
        self.counters.spill_fallbacks.load(Ordering::Relaxed)
    }

    /// Total bytes written to spill files so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.counters.spilled_bytes.load(Ordering::Relaxed)
    }
}

impl Drop for TraceStore {
    fn drop(&mut self) {
        // Closing the channel lets the writer drain its queue and exit;
        // joining before the directory goes away guarantees no write
        // races the removal.
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn write_spill<C: TraceClass>(
    trace: &MissTrace<C>,
    path: &std::path::Path,
) -> std::io::Result<u64> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write_trace(trace, &mut w)?;
    std::io::Write::flush(&mut w)?;
    Ok(w.get_ref().metadata().map_or(0, |m| m.len()))
}

/// Where a stored trace currently lives.
#[derive(Debug)]
enum SpillState<C> {
    /// Spill write in flight on the writer thread; the trace is still
    /// resident and readable without touching disk.
    Writing(Arc<MissTrace<C>>),
    /// Kept in memory: under the spill threshold, or the spill write
    /// failed.
    Resident(Arc<MissTrace<C>>),
    /// Landed in the spill file; reload on demand.
    OnDisk,
}

/// A trace held either in memory or in a spill file, loaded lazily and
/// at most once; cheap to share across analyze jobs behind an `Arc`.
#[derive(Debug)]
pub struct SharedTrace<C: TraceClass> {
    inner: Arc<Shared<C>>,
    spill_path: Option<PathBuf>,
    cache: OnceLock<Result<Arc<MissTrace<C>>, Arc<ReadTraceError>>>,
    empty: OnceLock<MissTrace<C>>,
}

/// The slice of [`SharedTrace`] the writer thread transitions.
#[derive(Debug)]
struct Shared<C> {
    state: Mutex<SpillState<C>>,
}

impl<C: TraceClass> SharedTrace<C> {
    fn resident(trace: MissTrace<C>) -> Self {
        let trace = Arc::new(trace);
        let cache = OnceLock::new();
        let _ = cache.set(Ok(trace.clone()));
        SharedTrace {
            inner: Arc::new(Shared {
                state: Mutex::new(SpillState::Resident(trace)),
            }),
            spill_path: None,
            cache,
            empty: OnceLock::new(),
        }
    }

    fn writing(trace: Arc<MissTrace<C>>, path: PathBuf) -> Self {
        SharedTrace {
            inner: Arc::new(Shared {
                state: Mutex::new(SpillState::Writing(trace)),
            }),
            spill_path: Some(path),
            cache: OnceLock::new(),
            empty: OnceLock::new(),
        }
    }

    /// Returns `true` when the trace lives only in its spill file: the
    /// background write has landed and no reader has reloaded it yet.
    pub fn is_spilled(&self) -> bool {
        self.cache.get().is_none() && matches!(*self.inner.state.lock(), SpillState::OnDisk)
    }

    fn load(&self) -> &Result<Arc<MissTrace<C>>, Arc<ReadTraceError>> {
        // Resolve *outside* `OnceLock::get_or_init`, then publish with
        // `set` (first writer wins). `get_or_init` would block any
        // concurrent caller on the initializing thread — a dependency
        // that is invisible to the schedcheck scheduler and that the
        // model checker would misreport as a deadlock. Racing readers
        // may both read the spill file; only one result is kept.
        if let Some(v) = self.cache.get() {
            return v;
        }
        let resolved = {
            let state = self.inner.state.lock();
            match &*state {
                SpillState::Writing(t) | SpillState::Resident(t) => Ok(t.clone()),
                SpillState::OnDisk => {
                    drop(state);
                    let path = self
                        .spill_path
                        .as_ref()
                        .expect("on-disk trace always has a spill path");
                    File::open(path)
                        .map_err(|e| Arc::new(ReadTraceError::Io(e)))
                        .and_then(|file| {
                            read_trace(BufReader::new(file))
                                .map(Arc::new)
                                .map_err(Arc::new)
                        })
                }
            }
        };
        let _ = self.cache.set(resolved);
        self.cache.get().expect("cache just populated")
    }

    /// The trace, reloading it from the spill file on first touch.
    ///
    /// # Errors
    ///
    /// Returns the (cached) reload error when the spill file vanished or
    /// is corrupt; every later call returns the same error.
    pub fn try_trace(&self) -> Result<&MissTrace<C>, Arc<ReadTraceError>> {
        match self.load() {
            Ok(t) => Ok(t),
            Err(e) => Err(Arc::clone(e)),
        }
    }

    /// The trace, or an empty placeholder when the spill file cannot be
    /// read back (reported on stderr once per handle). Analyze jobs use
    /// this so a vanished or corrupt spill file degrades that context's
    /// results instead of aborting the whole pipeline run.
    pub fn trace_or_empty(&self) -> &MissTrace<C> {
        match self.load() {
            Ok(t) => t,
            Err(e) => self.empty.get_or_init(|| {
                let path = self
                    .spill_path
                    .as_deref()
                    .unwrap_or(std::path::Path::new("?"));
                eprintln!(
                    "warning: spill reload from {} failed ({e}); analyzing empty trace",
                    path.display()
                );
                MissTrace::new(1)
            }),
        }
    }

    /// The trace, reloading it from the spill file on first touch.
    ///
    /// # Panics
    ///
    /// Panics if the spill file cannot be read back. Callers that must
    /// survive reload failure use [`try_trace`](Self::try_trace) or
    /// [`trace_or_empty`](Self::trace_or_empty) instead.
    pub fn trace(&self) -> &MissTrace<C> {
        match self.try_trace() {
            Ok(t) => t,
            Err(e) => panic!("spill trace unavailable: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::miss::MissRecord;
    use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

    fn trace_of(len: usize) -> MissTrace<MissClass> {
        let mut t = MissTrace::new(4);
        t.set_instructions(777);
        for i in 0..len {
            t.push(MissRecord {
                block: Block::new(i as u64 * 11),
                cpu: CpuId::new((i % 4) as u32),
                thread: ThreadId::new(i as u32),
                function: FunctionId::new((i % 5) as u32),
                class: MissClass::from_byte((i % 4) as u8).unwrap(),
            });
        }
        t
    }

    #[test]
    fn small_traces_stay_in_memory() {
        let store = TraceStore::new(100).unwrap();
        let shared = store.put(trace_of(50));
        assert!(!shared.is_spilled());
        store.flush();
        assert_eq!(store.spilled_traces(), 0);
        assert_eq!(shared.trace().len(), 50);
    }

    #[test]
    fn large_traces_spill_and_reload_identically() {
        let store = TraceStore::new(100).unwrap();
        let original = trace_of(500);
        let records: Vec<_> = original.records().to_vec();
        let shared = store.put(original);
        store.flush();
        assert!(shared.is_spilled(), "trace above threshold must page out");
        assert_eq!(store.spilled_traces(), 1);
        assert!(store.spilled_bytes() > 0);

        let loaded = shared.trace();
        assert_eq!(loaded.records(), &records[..]);
        assert_eq!(loaded.instructions(), 777);
        assert_eq!(loaded.num_cpus(), 4);
        assert!(!shared.is_spilled(), "reload caches the trace");
        // Second access hits the cache, not the file.
        assert_eq!(shared.trace().len(), 500);
    }

    #[test]
    fn trace_is_readable_while_write_is_in_flight() {
        // A reader that races the background write claims the resident
        // copy instead of waiting for the file.
        let store = TraceStore::new(0).unwrap();
        let shared = store.put(trace_of(40));
        assert_eq!(shared.trace().len(), 40);
        store.flush();
        // The claim is cached, so the handle never counts as spilled.
        assert!(!shared.is_spilled());
        assert_eq!(store.spilled_traces(), 1, "the spill still lands on disk");
    }

    #[test]
    fn store_drop_removes_spill_dir() {
        let dir;
        {
            let store = TraceStore::new(0).unwrap();
            let shared = store.put(trace_of(10));
            store.flush();
            assert!(shared.is_spilled());
            dir = store.dir.clone();
            assert!(dir.exists());
            let _ = shared.trace();
        }
        assert!(!dir.exists(), "spill dir must be cleaned up");
    }

    #[test]
    fn write_failure_falls_back_to_memory() {
        let store = TraceStore::new(0).unwrap();
        // Removing the backing directory makes every File::create fail.
        std::fs::remove_dir_all(&store.dir).unwrap();
        let shared = store.put(trace_of(30));
        store.flush();
        assert!(!shared.is_spilled(), "failed spill must stay in memory");
        assert_eq!(store.spilled_traces(), 0);
        assert_eq!(store.spill_fallbacks(), 1);
        assert_eq!(shared.trace().len(), 30);
    }

    #[test]
    fn vanished_spill_file_degrades_to_empty_trace() {
        let store = TraceStore::new(0).unwrap();
        let shared = store.put(trace_of(25));
        store.flush();
        assert!(shared.is_spilled());
        std::fs::remove_file(shared.spill_path.as_ref().unwrap()).unwrap();
        assert!(shared.try_trace().is_err(), "reload must surface the error");
        let t = shared.trace_or_empty();
        assert!(t.is_empty(), "fallback trace must be empty");
        // The error is cached; later calls agree.
        assert!(shared.try_trace().is_err());
        assert!(shared.trace_or_empty().is_empty());
    }

    #[test]
    fn corrupt_spill_file_reports_read_error() {
        let store = TraceStore::new(0).unwrap();
        let shared = store.put(trace_of(25));
        store.flush();
        std::fs::write(shared.spill_path.as_ref().unwrap(), b"NOPE").unwrap();
        let err = shared.try_trace().unwrap_err();
        assert!(matches!(*err, ReadTraceError::BadMagic));
        assert!(shared.trace_or_empty().is_empty());
    }

    #[test]
    fn concurrent_puts_get_distinct_files() {
        let store = TraceStore::new(0).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let st = &store;
                s.spawn(move || {
                    for _ in 0..8 {
                        let shared = st.put(trace_of(20));
                        assert_eq!(shared.trace().len(), 20);
                    }
                });
            }
        });
        store.flush();
        assert_eq!(store.spilled_traces(), 32);
    }

    #[test]
    fn flush_pins_counters_after_many_queued_spills() {
        // More puts than the writer queue depth: put() applies
        // backpressure rather than dropping, and flush() observes every
        // completed write.
        let store = TraceStore::new(0).unwrap();
        let handles: Vec<_> = (0..3 * WRITER_QUEUE_DEPTH)
            .map(|_| store.put(trace_of(15)))
            .collect();
        store.flush();
        assert_eq!(store.spilled_traces(), 3 * WRITER_QUEUE_DEPTH);
        for h in &handles {
            assert!(h.is_spilled());
            assert_eq!(h.trace().len(), 15);
        }
    }
}
