//! Spill-to-disk storage for miss traces between pipeline stages.
//!
//! The simulate stage can finish long before the analyze stages drain a
//! trace, and a full-scale run holds several multi-million-record
//! traces at once. A [`TraceStore`] keeps small traces in memory but
//! pages traces larger than its threshold out to disk in the existing
//! `TSMT` binary format (`tempstream_trace::io`), so peak RSS stays
//! bounded by the analysis cap rather than by total trace volume.
//! [`SharedTrace`] lazily reloads a spilled trace the first time an
//! analyze job touches it and caches it for the context's remaining
//! jobs; dropping the last handle frees the memory again.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use tempstream_trace::io::{read_trace, write_trace, ReadTraceError, TraceClass};
use tempstream_trace::MissTrace;

/// A directory of spilled traces, removed on drop.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    threshold: usize,
    next_id: AtomicU64,
    spilled_traces: AtomicUsize,
    spilled_bytes: AtomicU64,
    spill_fallbacks: AtomicUsize,
}

impl TraceStore {
    /// Creates a store that spills traces holding more than `threshold`
    /// records. The backing directory lives under the system temp dir
    /// and is deleted when the store drops.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the backing directory.
    pub fn new(threshold: usize) -> std::io::Result<Self> {
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tempstream-spill-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(TraceStore {
            dir,
            threshold,
            next_id: AtomicU64::new(0),
            spilled_traces: AtomicUsize::new(0),
            spilled_bytes: AtomicU64::new(0),
            spill_fallbacks: AtomicUsize::new(0),
        })
    }

    /// Record-count threshold above which a trace spills to disk.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Stores `trace`, spilling it to disk when it exceeds the
    /// threshold; the returned [`SharedTrace`] reloads it on demand.
    ///
    /// Never fails: if the spill file cannot be written (disk full,
    /// directory removed), the partial file is discarded and the trace
    /// stays in memory — a pipeline run degrades to higher RSS instead
    /// of aborting. Such fallbacks are counted in
    /// [`spill_fallbacks`](Self::spill_fallbacks).
    pub fn put<C: TraceClass>(&self, trace: MissTrace<C>) -> SharedTrace<C> {
        if trace.len() <= self.threshold {
            return SharedTrace::in_memory(trace);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("t{id}.tsmt"));
        match self.write_spill(&trace, &path) {
            Ok(bytes) => {
                self.spilled_traces.fetch_add(1, Ordering::Relaxed);
                self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
                SharedTrace::on_disk(path)
            }
            Err(e) => {
                eprintln!(
                    "warning: spill write to {} failed ({e}); keeping trace in memory",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
                self.spill_fallbacks.fetch_add(1, Ordering::Relaxed);
                SharedTrace::in_memory(trace)
            }
        }
    }

    fn write_spill<C: TraceClass>(
        &self,
        trace: &MissTrace<C>,
        path: &std::path::Path,
    ) -> std::io::Result<u64> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        write_trace(trace, &mut w)?;
        std::io::Write::flush(&mut w)?;
        Ok(w.get_ref().metadata().map_or(0, |m| m.len()))
    }

    /// Number of traces spilled to disk so far.
    pub fn spilled_traces(&self) -> usize {
        self.spilled_traces.load(Ordering::Relaxed)
    }

    /// Number of oversized traces kept in memory because their spill
    /// write failed.
    pub fn spill_fallbacks(&self) -> usize {
        self.spill_fallbacks.load(Ordering::Relaxed)
    }

    /// Total bytes written to spill files so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }
}

impl Drop for TraceStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A trace held either in memory or in a spill file, loaded lazily and
/// at most once; cheap to share across analyze jobs behind an `Arc`.
#[derive(Debug)]
pub struct SharedTrace<C: TraceClass> {
    spill_path: Option<PathBuf>,
    cache: OnceLock<Result<MissTrace<C>, Arc<ReadTraceError>>>,
    empty: OnceLock<MissTrace<C>>,
}

impl<C: TraceClass> SharedTrace<C> {
    fn in_memory(trace: MissTrace<C>) -> Self {
        let cache = OnceLock::new();
        let _ = cache.set(Ok(trace));
        SharedTrace {
            spill_path: None,
            cache,
            empty: OnceLock::new(),
        }
    }

    fn on_disk(path: PathBuf) -> Self {
        SharedTrace {
            spill_path: Some(path),
            cache: OnceLock::new(),
            empty: OnceLock::new(),
        }
    }

    /// Returns `true` when the trace lives in a spill file that has not
    /// been reloaded yet.
    pub fn is_spilled(&self) -> bool {
        self.spill_path.is_some() && self.cache.get().is_none()
    }

    fn load(&self) -> &Result<MissTrace<C>, Arc<ReadTraceError>> {
        self.cache.get_or_init(|| {
            let path = self
                .spill_path
                .as_ref()
                .expect("in-memory SharedTrace always has a cached trace");
            let file = File::open(path).map_err(|e| Arc::new(ReadTraceError::Io(e)))?;
            read_trace(BufReader::new(file)).map_err(Arc::new)
        })
    }

    /// The trace, reloading it from the spill file on first touch.
    ///
    /// # Errors
    ///
    /// Returns the (cached) reload error when the spill file vanished or
    /// is corrupt; every later call returns the same error.
    pub fn try_trace(&self) -> Result<&MissTrace<C>, Arc<ReadTraceError>> {
        self.load().as_ref().map_err(Arc::clone)
    }

    /// The trace, or an empty placeholder when the spill file cannot be
    /// read back (reported on stderr once per handle). Analyze jobs use
    /// this so a vanished or corrupt spill file degrades that context's
    /// results instead of aborting the whole pipeline run.
    pub fn trace_or_empty(&self) -> &MissTrace<C> {
        match self.load() {
            Ok(t) => t,
            Err(e) => self.empty.get_or_init(|| {
                let path = self
                    .spill_path
                    .as_deref()
                    .unwrap_or(std::path::Path::new("?"));
                eprintln!(
                    "warning: spill reload from {} failed ({e}); analyzing empty trace",
                    path.display()
                );
                MissTrace::new(1)
            }),
        }
    }

    /// The trace, reloading it from the spill file on first touch.
    ///
    /// # Panics
    ///
    /// Panics if the spill file cannot be read back. Callers that must
    /// survive reload failure use [`try_trace`](Self::try_trace) or
    /// [`trace_or_empty`](Self::trace_or_empty) instead.
    pub fn trace(&self) -> &MissTrace<C> {
        match self.try_trace() {
            Ok(t) => t,
            Err(e) => panic!("spill trace unavailable: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::miss::MissRecord;
    use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

    fn trace_of(len: usize) -> MissTrace<MissClass> {
        let mut t = MissTrace::new(4);
        t.set_instructions(777);
        for i in 0..len {
            t.push(MissRecord {
                block: Block::new(i as u64 * 11),
                cpu: CpuId::new((i % 4) as u32),
                thread: ThreadId::new(i as u32),
                function: FunctionId::new((i % 5) as u32),
                class: MissClass::from_byte((i % 4) as u8).unwrap(),
            });
        }
        t
    }

    #[test]
    fn small_traces_stay_in_memory() {
        let store = TraceStore::new(100).unwrap();
        let shared = store.put(trace_of(50));
        assert!(!shared.is_spilled());
        assert_eq!(store.spilled_traces(), 0);
        assert_eq!(shared.trace().len(), 50);
    }

    #[test]
    fn large_traces_spill_and_reload_identically() {
        let store = TraceStore::new(100).unwrap();
        let original = trace_of(500);
        let records: Vec<_> = original.records().to_vec();
        let shared = store.put(original);
        assert!(shared.is_spilled(), "trace above threshold must page out");
        assert_eq!(store.spilled_traces(), 1);
        assert!(store.spilled_bytes() > 0);

        let loaded = shared.trace();
        assert_eq!(loaded.records(), &records[..]);
        assert_eq!(loaded.instructions(), 777);
        assert_eq!(loaded.num_cpus(), 4);
        assert!(!shared.is_spilled(), "reload caches the trace");
        // Second access hits the cache, not the file.
        assert_eq!(shared.trace().len(), 500);
    }

    #[test]
    fn store_drop_removes_spill_dir() {
        let dir;
        {
            let store = TraceStore::new(0).unwrap();
            let shared = store.put(trace_of(10));
            assert!(shared.is_spilled());
            dir = store.dir.clone();
            assert!(dir.exists());
            let _ = shared.trace();
        }
        assert!(!dir.exists(), "spill dir must be cleaned up");
    }

    #[test]
    fn write_failure_falls_back_to_memory() {
        let store = TraceStore::new(0).unwrap();
        // Removing the backing directory makes every File::create fail.
        std::fs::remove_dir_all(&store.dir).unwrap();
        let shared = store.put(trace_of(30));
        assert!(!shared.is_spilled(), "failed spill must stay in memory");
        assert_eq!(store.spilled_traces(), 0);
        assert_eq!(store.spill_fallbacks(), 1);
        assert_eq!(shared.trace().len(), 30);
    }

    #[test]
    fn vanished_spill_file_degrades_to_empty_trace() {
        let store = TraceStore::new(0).unwrap();
        let shared = store.put(trace_of(25));
        assert!(shared.is_spilled());
        std::fs::remove_file(shared.spill_path.as_ref().unwrap()).unwrap();
        assert!(shared.try_trace().is_err(), "reload must surface the error");
        let t = shared.trace_or_empty();
        assert!(t.is_empty(), "fallback trace must be empty");
        // The error is cached; later calls agree.
        assert!(shared.try_trace().is_err());
        assert!(shared.trace_or_empty().is_empty());
    }

    #[test]
    fn corrupt_spill_file_reports_read_error() {
        let store = TraceStore::new(0).unwrap();
        let shared = store.put(trace_of(25));
        std::fs::write(shared.spill_path.as_ref().unwrap(), b"NOPE").unwrap();
        let err = shared.try_trace().unwrap_err();
        assert!(matches!(*err, ReadTraceError::BadMagic));
        assert!(shared.trace_or_empty().is_empty());
    }

    #[test]
    fn concurrent_puts_get_distinct_files() {
        let store = TraceStore::new(0).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let st = &store;
                s.spawn(move || {
                    for _ in 0..8 {
                        let shared = st.put(trace_of(20));
                        assert_eq!(shared.trace().len(), 20);
                    }
                });
            }
        });
        assert_eq!(store.spilled_traces(), 32);
    }
}
