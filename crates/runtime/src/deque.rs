//! A work-stealing double-ended job queue.
//!
//! Each pool worker owns one `WorkDeque` and treats its back as a LIFO
//! stack: newly spawned jobs are pushed and popped at the back, which
//! keeps a worker on the most recently produced (cache-hot, most
//! dependent) work. Thieves take from the *front* — the oldest jobs —
//! which are the coarsest-grained and cheapest to migrate. This is the
//! classic Chase–Lev discipline, implemented here over a mutex (the
//! workspace forbids `unsafe`); jobs in this runtime are whole pipeline
//! stages, so queue operations are nowhere near the contention point.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::Mutex;
use std::collections::VecDeque;

/// A mutex-based work-stealing deque.
///
/// The owner pushes and pops at the back; thieves steal from the front.
#[derive(Debug, Default)]
pub struct WorkDeque<T> {
    inner: Mutex<VecDeque<T>>,
    max_depth: AtomicUsize,
}

impl<T> WorkDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        WorkDeque {
            inner: Mutex::new(VecDeque::new()),
            max_depth: AtomicUsize::new(0),
        }
    }

    /// Pushes a job at the owner end.
    pub fn push(&self, item: T) {
        let mut q = self.inner.lock();
        q.push_back(item);
        self.max_depth.fetch_max(q.len(), Ordering::Relaxed);
    }

    /// Pops the most recently pushed job (owner end, LIFO).
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_back()
    }

    /// Steals the oldest job (thief end, FIFO).
    pub fn steal(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Returns `true` when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the queue depth over the deque's lifetime.
    pub fn max_depth(&self) -> usize {
        self.max_depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d = WorkDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Some(1), "thief takes oldest");
        assert_eq!(d.pop(), Some(3), "owner takes newest");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn depth_high_water_mark() {
        let d = WorkDeque::new();
        for i in 0..5 {
            d.push(i);
        }
        d.pop();
        d.pop();
        d.push(9);
        assert_eq!(d.len(), 4);
        assert_eq!(d.max_depth(), 5);
    }

    #[test]
    fn concurrent_steals_never_duplicate() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let d = WorkDeque::new();
        const N: u64 = 10_000;
        for i in 0..N {
            d.push(i);
        }
        let sum = AtomicU64::new(0);
        let taken = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(v) = d.steal() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), N);
        assert_eq!(sum.load(Ordering::Relaxed), N * (N - 1) / 2);
    }
}
