//! Property tests: the set-associative cache against a brute-force LRU
//! reference model.

use proptest::prelude::*;
use std::collections::VecDeque;
use tempstream_cache::{CacheConfig, SetAssocCache};
use tempstream_trace::Block;

/// Reference model: per-set LRU lists, most recent first.
struct Reference {
    sets: Vec<VecDeque<u64>>,
    assoc: usize,
    mask: u64,
}

impl Reference {
    fn new(num_sets: u64, assoc: usize) -> Self {
        Reference {
            sets: (0..num_sets).map(|_| VecDeque::new()).collect(),
            assoc,
            mask: num_sets - 1,
        }
    }

    fn touch(&mut self, block: u64) -> bool {
        let set = &mut self.sets[(block & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            set.push_front(block);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, block: u64) -> Option<u64> {
        let set = &mut self.sets[(block & self.mask) as usize];
        let victim = if set.len() == self.assoc {
            set.pop_back()
        } else {
            None
        };
        set.push_front(block);
        victim
    }

    fn invalidate(&mut self, block: u64) -> bool {
        let set = &mut self.sets[(block & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            true
        } else {
            false
        }
    }
}

/// Operation: 0-5 = touch-or-insert (read), 6 = invalidate.
type Op = (u8, u64);

fn run_both(config: CacheConfig, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut cache: SetAssocCache<u64> = SetAssocCache::new(config);
    let mut reference = Reference::new(config.num_sets(), config.associativity as usize);
    for &(kind, raw) in ops {
        let block = Block::new(raw);
        if kind % 7 == 6 {
            let c = cache.invalidate(block).is_some();
            let r = reference.invalidate(raw);
            prop_assert_eq!(c, r, "invalidate({}) mismatch", raw);
        } else {
            let c_hit = cache.touch(block).is_some();
            let r_hit = reference.touch(raw);
            prop_assert_eq!(c_hit, r_hit, "touch({}) hit mismatch", raw);
            if !c_hit {
                let c_victim = cache.insert(block, raw).map(|(b, _)| b.raw());
                let r_victim = reference.insert(raw);
                prop_assert_eq!(c_victim, r_victim, "insert({}) victim mismatch", raw);
            }
        }
        prop_assert_eq!(
            cache.len(),
            reference.sets.iter().map(VecDeque::len).sum::<usize>()
        );
    }
    Ok(())
}

proptest! {
    /// 2-way (L1 geometry): hits, victims, and sizes match exact LRU.
    #[test]
    fn two_way_matches_reference(ops in proptest::collection::vec((0u8..8, 0u64..64), 0..500)) {
        run_both(CacheConfig::new(8 * 64 * 2, 2), &ops)?;
    }

    /// 16-way (L2 geometry): same, with a single-set (fully associative)
    /// configuration to stress replacement ordering.
    #[test]
    fn fully_associative_matches_reference(ops in proptest::collection::vec((0u8..8, 0u64..40), 0..500)) {
        run_both(CacheConfig::new(16 * 64, 16), &ops)?;
    }

    /// Occupancy never exceeds capacity, for any op sequence.
    #[test]
    fn never_over_capacity(ops in proptest::collection::vec((0u8..8, 0u64..1000), 0..400)) {
        let config = CacheConfig::new(4 * 64 * 4, 4);
        let mut cache: SetAssocCache<()> = SetAssocCache::new(config);
        for &(kind, raw) in &ops {
            let block = Block::new(raw);
            if kind % 7 == 6 {
                cache.invalidate(block);
            } else if cache.touch(block).is_none() {
                cache.insert(block, ());
            }
            prop_assert!(cache.len() as u64 <= config.num_blocks());
        }
    }
}
