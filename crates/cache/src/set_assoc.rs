//! The set-associative, true-LRU cache structure.

use crate::config::CacheConfig;
use crate::stats::CacheStats;
use tempstream_trace::Block;

/// A set-associative cache with true-LRU replacement, generic over a
/// per-line payload `T` (typically a coherence state).
///
/// Each set is a small vector ordered most-recently-used first; with the
/// paper's associativities (2 and 16) move-to-front is both exact LRU and
/// fast.
#[derive(Debug, Clone)]
pub struct SetAssocCache<T> {
    config: CacheConfig,
    set_mask: u64,
    sets: Vec<Vec<Line<T>>>,
    stats: CacheStats,
}

#[derive(Debug, Clone)]
struct Line<T> {
    block: Block,
    payload: T,
}

impl<T> SetAssocCache<T> {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        SetAssocCache {
            config,
            set_mask: num_sets - 1,
            sets: (0..num_sets)
                .map(|_| Vec::with_capacity(config.associativity as usize))
                .collect(),
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated hit/miss/eviction statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_index(&self, block: Block) -> usize {
        (block.raw() & self.set_mask) as usize
    }

    /// Looks up `block` without updating LRU order or statistics.
    pub fn probe(&self, block: Block) -> Option<&T> {
        self.sets[self.set_index(block)]
            .iter()
            .find(|l| l.block == block)
            .map(|l| &l.payload)
    }

    /// Looks up `block`, and on a hit moves it to MRU and returns a mutable
    /// reference to its payload. Records a hit or miss in the statistics.
    pub fn touch(&mut self, block: Block) -> Option<&mut T> {
        let set_idx = self.set_index(block);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.block == block) {
            self.stats.hits += 1;
            let line = set.remove(pos);
            set.insert(0, line);
            Some(&mut set[0].payload)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Returns a mutable reference to the payload of `block` without
    /// changing LRU order or statistics.
    pub fn peek_mut(&mut self, block: Block) -> Option<&mut T> {
        let set_idx = self.set_index(block);
        self.sets[set_idx]
            .iter_mut()
            .find(|l| l.block == block)
            .map(|l| &mut l.payload)
    }

    /// Inserts `block` at MRU, returning the evicted `(block, payload)` if
    /// the set was full.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block` is already present (callers must
    /// `touch`/`peek_mut` existing lines instead).
    pub fn insert(&mut self, block: Block, payload: T) -> Option<(Block, T)> {
        let assoc = self.config.associativity as usize;
        let set_idx = self.set_index(block);
        let set = &mut self.sets[set_idx];
        debug_assert!(
            set.iter().all(|l| l.block != block),
            "insert of already-present block {block}"
        );
        let victim = if set.len() == assoc {
            let lru = set.pop().expect("non-empty full set");
            self.stats.evictions += 1;
            Some((lru.block, lru.payload))
        } else {
            None
        };
        set.insert(0, Line { block, payload });
        victim
    }

    /// Removes `block`, returning its payload if it was present.
    pub fn invalidate(&mut self, block: Block) -> Option<T> {
        let set_idx = self.set_index(block);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|l| l.block == block)?;
        self.stats.invalidations += 1;
        Some(set.remove(pos).payload)
    }

    /// Returns `true` if `block` is cached.
    pub fn contains(&self, block: Block) -> bool {
        self.probe(block).is_some()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Iterates over resident `(block, payload)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Block, &T)> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|l| (l.block, &l.payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache<u32> {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheConfig::new(4 * 64, 2))
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(c.touch(Block::new(0)).is_none());
        c.insert(Block::new(0), 7);
        assert_eq!(c.touch(Block::new(0)), Some(&mut 7));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Blocks 0, 2, 4 map to set 0 (even block numbers).
        c.insert(Block::new(0), 0);
        c.insert(Block::new(2), 2);
        // Touch 0 so 2 becomes LRU.
        assert!(c.touch(Block::new(0)).is_some());
        let victim = c.insert(Block::new(4), 4);
        assert_eq!(victim, Some((Block::new(2), 2)));
        assert!(c.contains(Block::new(0)));
        assert!(c.contains(Block::new(4)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.insert(Block::new(0), 0); // set 0
        c.insert(Block::new(1), 1); // set 1
        c.insert(Block::new(2), 2); // set 0
        c.insert(Block::new(3), 3); // set 1
        assert_eq!(c.len(), 4);
        // Filling set 0 further evicts only from set 0.
        let victim = c.insert(Block::new(4), 4);
        assert_eq!(victim, Some((Block::new(0), 0)));
        assert!(c.contains(Block::new(1)));
        assert!(c.contains(Block::new(3)));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(Block::new(0), 9);
        assert_eq!(c.invalidate(Block::new(0)), Some(9));
        assert_eq!(c.invalidate(Block::new(0)), None);
        assert!(!c.contains(Block::new(0)));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.insert(Block::new(0), 0);
        c.insert(Block::new(2), 2);
        // Probing 0 must NOT protect it from eviction.
        assert_eq!(c.probe(Block::new(0)), Some(&0));
        let victim = c.insert(Block::new(4), 4);
        assert_eq!(victim, Some((Block::new(0), 0)));
    }

    #[test]
    fn peek_mut_updates_payload() {
        let mut c = tiny();
        c.insert(Block::new(0), 1);
        *c.peek_mut(Block::new(0)).unwrap() = 5;
        assert_eq!(c.probe(Block::new(0)), Some(&5));
    }

    #[test]
    fn iter_sees_all_lines() {
        let mut c = tiny();
        c.insert(Block::new(0), 10);
        c.insert(Block::new(1), 11);
        let mut items: Vec<_> = c.iter().map(|(b, &v)| (b.raw(), v)).collect();
        items.sort();
        assert_eq!(items, vec![(0, 10), (1, 11)]);
    }

    #[test]
    fn capacity_respected_under_fill() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(CacheConfig::new(64 * 64, 4));
        for b in 0..10_000u64 {
            if c.touch(Block::new(b)).is_none() {
                c.insert(Block::new(b), ());
            }
        }
        assert!(c.len() <= c.config().num_blocks() as usize);
        assert_eq!(c.len(), 64);
    }
}
