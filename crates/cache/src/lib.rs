//! Set-associative cache model for the temporal-streams simulators.
//!
//! The coherence simulators in `tempstream-coherence` are built from
//! [`SetAssocCache`]s: true-LRU, set-associative, generic over a per-line
//! payload (the coherence state). Geometry presets for the paper's two
//! system organizations live in [`config`].
//!
//! # Example
//!
//! ```
//! use tempstream_cache::{CacheConfig, SetAssocCache};
//! use tempstream_trace::Block;
//!
//! let mut l1: SetAssocCache<()> = SetAssocCache::new(CacheConfig::paper_l1());
//! assert!(l1.touch(Block::new(7)).is_none()); // cold miss
//! l1.insert(Block::new(7), ());
//! assert!(l1.touch(Block::new(7)).is_some()); // hit
//! ```

pub mod config;
pub mod set_assoc;
pub mod stats;

pub use config::CacheConfig;
pub use set_assoc::SetAssocCache;
pub use stats::CacheStats;
