//! Cache access statistics.

use std::fmt;

/// Hit/miss/eviction counters accumulated by a
/// [`SetAssocCache`](crate::SetAssocCache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `touch` calls that found the block.
    pub hits: u64,
    /// `touch` calls that did not find the block.
    pub misses: u64,
    /// Lines displaced by `insert` into a full set.
    pub evictions: u64,
    /// Lines removed by `invalidate`.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total `touch` accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; 0.0 when no accesses were recorded.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%), {} evictions, {} invalidations",
            self.accesses(),
            self.misses,
            self.miss_ratio() * 100.0,
            self.evictions,
            self.invalidations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            invalidations: 0,
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!CacheStats::default().to_string().is_empty());
    }
}
