//! Cache geometry configuration and the paper's presets.

use std::fmt;
use tempstream_trace::BLOCK_BYTES;

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of ways per set.
    pub associativity: u32,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate: zero capacity or associativity,
    /// capacity not a multiple of `associativity * 64 B`, or a non-power-of-
    /// two set count (required for index extraction).
    pub fn new(capacity_bytes: u64, associativity: u32) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be non-zero");
        assert!(associativity > 0, "associativity must be non-zero");
        let way_bytes = associativity as u64 * BLOCK_BYTES;
        assert!(
            capacity_bytes.is_multiple_of(way_bytes),
            "capacity must be a multiple of associativity * block size"
        );
        let sets = capacity_bytes / way_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            capacity_bytes,
            associativity,
        }
    }

    /// The paper's L1 data cache: 64 KB, 2-way (both system organizations).
    pub fn paper_l1() -> Self {
        CacheConfig::new(64 * 1024, 2)
    }

    /// The paper's L2 cache: 8 MB, 16-way (per-node in multi-chip, shared in
    /// single-chip).
    pub fn paper_l2() -> Self {
        CacheConfig::new(8 * 1024 * 1024, 16)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.capacity_bytes / (self.associativity as u64 * BLOCK_BYTES)
    }

    /// Number of cache blocks this cache can hold.
    pub fn num_blocks(&self) -> u64 {
        self.capacity_bytes / BLOCK_BYTES
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kb = self.capacity_bytes / 1024;
        if kb >= 1024 {
            write!(f, "{}MB {}-way", kb / 1024, self.associativity)
        } else {
            write!(f, "{}KB {}-way", kb, self.associativity)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets() {
        let l1 = CacheConfig::paper_l1();
        assert_eq!(l1.num_sets(), 512);
        assert_eq!(l1.num_blocks(), 1024);
        assert_eq!(l1.to_string(), "64KB 2-way");

        let l2 = CacheConfig::paper_l2();
        assert_eq!(l2.num_sets(), 8192);
        assert_eq!(l2.num_blocks(), 131072);
        assert_eq!(l2.to_string(), "8MB 16-way");
    }

    #[test]
    #[should_panic(expected = "capacity must be a multiple")]
    fn rejects_misaligned_capacity() {
        CacheConfig::new(1000, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        CacheConfig::new(3 * 64 * 2, 2); // 3 sets
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_assoc() {
        CacheConfig::new(64, 0);
    }

    #[test]
    fn fully_associative_single_set() {
        let c = CacheConfig::new(64 * 16, 16);
        assert_eq!(c.num_sets(), 1);
    }
}
