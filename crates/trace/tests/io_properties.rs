//! Property and corruption tests for the `TSMT` binary trace format.
//!
//! Round-trips random traces of both class tags through the writer and
//! reader, then attacks the encoded bytes (truncation at every region,
//! header field corruption) and asserts the reader reports the precise
//! [`ReadTraceError`] variant for each failure mode — never a panic and
//! never a silently wrong trace.

use tempstream_trace::io::{read_trace, write_trace, ReadTraceError, TraceClass};
use tempstream_trace::miss::{MissRecord, MissTrace};
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Block, CpuId, FunctionId, IntraChipClass, MissClass, ThreadId};

/// Header layout: magic(4) + version(2) + class_tag(1) + num_cpus(4) +
/// instructions(8) + record_count(8).
const HEADER_BYTES: usize = 27;
/// Record layout: block(8) + cpu(4) + thread(4) + function(4) + class(1).
const RECORD_BYTES: usize = 21;

fn random_trace<C: TraceClass>(rng: &mut SmallRng, num_classes: u8, len: usize) -> MissTrace<C> {
    let num_cpus = rng.gen_range(1u32..=64);
    let mut t = MissTrace::new(num_cpus);
    t.set_instructions(rng.next_u64());
    for _ in 0..len {
        t.push(MissRecord {
            block: Block::new(rng.next_u64()),
            cpu: CpuId::new(rng.gen_range(0u32..num_cpus)),
            thread: ThreadId::new(rng.next_u64() as u32),
            function: FunctionId::new(rng.next_u64() as u32),
            class: C::from_byte(rng.gen_range(0u32..u32::from(num_classes)) as u8).unwrap(),
        });
    }
    t
}

fn encode<C: TraceClass>(t: &MissTrace<C>) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(t, &mut buf).unwrap();
    buf
}

#[test]
fn roundtrip_random_offchip_traces() {
    let mut rng = SmallRng::seed_from_u64(0x10_2008);
    for round in 0..64 {
        let t: MissTrace<MissClass> = random_trace(&mut rng, 4, round * 7);
        let buf = encode(&t);
        assert_eq!(buf.len(), HEADER_BYTES + t.len() * RECORD_BYTES);
        let back: MissTrace<MissClass> = read_trace(&buf[..]).unwrap();
        assert_eq!(back.num_cpus(), t.num_cpus());
        assert_eq!(back.instructions(), t.instructions());
        assert_eq!(back.records(), t.records());
    }
}

#[test]
fn roundtrip_random_intrachip_traces() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for round in 0..64 {
        let t: MissTrace<IntraChipClass> = random_trace(&mut rng, 4, round * 5 + 1);
        let back: MissTrace<IntraChipClass> = read_trace(&encode(&t)[..]).unwrap();
        assert_eq!(back.records(), t.records());
        assert_eq!(back.num_cpus(), t.num_cpus());
    }
}

#[test]
fn truncation_at_every_point_errors_without_panic() {
    let mut rng = SmallRng::seed_from_u64(7);
    let t: MissTrace<MissClass> = random_trace(&mut rng, 4, 13);
    let buf = encode(&t);
    for cut in 0..buf.len() {
        let err = read_trace::<MissClass, _>(&buf[..cut]).unwrap_err();
        if cut < HEADER_BYTES {
            // Mid-header cuts surface as plain I/O errors, except a cut
            // that happens to land after a complete 4-byte magic that no
            // longer matches (impossible here: the magic is intact).
            assert!(
                matches!(err, ReadTraceError::Io(_)),
                "cut {cut}: unexpected {err:?}"
            );
        } else {
            // Mid-record cuts are a count/payload disagreement.
            let whole = ((cut - HEADER_BYTES) / RECORD_BYTES) as u64;
            match err {
                ReadTraceError::TruncatedRecords { expected, read } => {
                    assert_eq!(expected, t.len() as u64, "cut {cut}");
                    assert_eq!(read, whole, "cut {cut}");
                }
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn bad_magic_detected() {
    let mut rng = SmallRng::seed_from_u64(11);
    let t: MissTrace<MissClass> = random_trace(&mut rng, 4, 3);
    let mut buf = encode(&t);
    buf[0] ^= 0xFF;
    assert!(matches!(
        read_trace::<MissClass, _>(&buf[..]).unwrap_err(),
        ReadTraceError::BadMagic
    ));
}

#[test]
fn bad_version_detected() {
    let mut rng = SmallRng::seed_from_u64(12);
    let t: MissTrace<MissClass> = random_trace(&mut rng, 4, 3);
    let mut buf = encode(&t);
    buf[4] = 0x77;
    assert!(matches!(
        read_trace::<MissClass, _>(&buf[..]).unwrap_err(),
        ReadTraceError::BadVersion(0x77)
    ));
}

#[test]
fn wrong_class_tag_detected_both_directions() {
    let mut rng = SmallRng::seed_from_u64(13);
    let off: MissTrace<MissClass> = random_trace(&mut rng, 4, 4);
    let err = read_trace::<IntraChipClass, _>(&encode(&off)[..]).unwrap_err();
    assert!(matches!(
        err,
        ReadTraceError::ClassMismatch {
            expected: 1,
            found: 0
        }
    ));

    let intra: MissTrace<IntraChipClass> = random_trace(&mut rng, 4, 4);
    let err = read_trace::<MissClass, _>(&encode(&intra)[..]).unwrap_err();
    assert!(matches!(
        err,
        ReadTraceError::ClassMismatch {
            expected: 0,
            found: 1
        }
    ));
}

#[test]
fn record_count_mismatch_detected() {
    let mut rng = SmallRng::seed_from_u64(14);
    let t: MissTrace<MissClass> = random_trace(&mut rng, 4, 9);
    let mut buf = encode(&t);
    // Inflate the header's record count beyond the payload.
    let count_at = HEADER_BYTES - 8;
    buf[count_at..HEADER_BYTES].copy_from_slice(&100u64.to_le_bytes());
    match read_trace::<MissClass, _>(&buf[..]).unwrap_err() {
        ReadTraceError::TruncatedRecords { expected, read } => {
            assert_eq!(expected, 100);
            assert_eq!(read, 9);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn invalid_class_byte_detected() {
    let mut rng = SmallRng::seed_from_u64(15);
    let t: MissTrace<MissClass> = random_trace(&mut rng, 4, 5);
    let mut buf = encode(&t);
    // Last byte of the final record is its class byte.
    let last = buf.len() - 1;
    buf[last] = 0xEE;
    assert!(matches!(
        read_trace::<MissClass, _>(&buf[..]).unwrap_err(),
        ReadTraceError::BadClass(0xEE)
    ));
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xD15EA5E);
    for _ in 0..256 {
        let len = rng.gen_range(0usize..512);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Any result is fine as long as it is an orderly Err or a valid trace.
        let _ = read_trace::<MissClass, _>(&bytes[..]);
        let _ = read_trace::<IntraChipClass, _>(&bytes[..]);
    }
}
