//! Physical addresses and cache-block addresses.
//!
//! The suite models a byte-addressed physical memory with 64-byte cache
//! blocks and 4 KB pages (the paper's SPARC/Solaris configuration). Two
//! newtypes keep the two granularities from being confused:
//! [`Address`] is a byte address, [`Block`] is a cache-block (line) address.

use std::fmt;

/// Cache-block size in bytes. Fixed at 64 B, as in the paper's systems.
pub const BLOCK_BYTES: u64 = 64;

/// Page size in bytes. Fixed at 4 KB (Solaris/SPARC base page).
pub const PAGE_BYTES: u64 = 4096;

/// Number of cache blocks per page.
pub const BLOCKS_PER_PAGE: u64 = PAGE_BYTES / BLOCK_BYTES;

/// A byte-granularity physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache block containing this address.
    pub const fn block(self) -> Block {
        Block(self.0 / BLOCK_BYTES)
    }

    /// Returns the page number containing this address.
    pub const fn page(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Returns the byte offset of this address within its cache block.
    pub const fn block_offset(self) -> u64 {
        self.0 % BLOCK_BYTES
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on overflow.
    pub fn offset(self, bytes: u64) -> Address {
        Address(self.0 + bytes)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

/// A cache-block (line) address: a byte address divided by [`BLOCK_BYTES`].
///
/// Miss traces and all temporal-stream analysis operate at block granularity,
/// matching the paper (streams are sequences of *block* addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Block(u64);

impl Block {
    /// Creates a block address from a raw block number.
    pub const fn new(raw: u64) -> Self {
        Block(raw)
    }

    /// Returns the block containing the given byte address.
    pub const fn containing(addr: Address) -> Self {
        addr.block()
    }

    /// Returns the raw block number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of this block.
    pub const fn base_address(self) -> Address {
        Address(self.0 * BLOCK_BYTES)
    }

    /// Returns the page number containing this block.
    pub const fn page(self) -> u64 {
        self.0 / BLOCKS_PER_PAGE
    }

    /// Returns the signed block-granularity distance `self - other`.
    ///
    /// Used by the stride detector; saturates at `i64` bounds.
    pub fn stride_from(self, other: Block) -> i64 {
        let a = self.0 as i128;
        let b = other.0 as i128;
        (a - b).clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// Returns the block advanced by a signed number of blocks.
    pub fn offset(self, blocks: i64) -> Block {
        Block(self.0.wrapping_add_signed(blocks))
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

impl From<Address> for Block {
    fn from(addr: Address) -> Self {
        addr.block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_address() {
        assert_eq!(Address::new(0).block(), Block::new(0));
        assert_eq!(Address::new(63).block(), Block::new(0));
        assert_eq!(Address::new(64).block(), Block::new(1));
        assert_eq!(Address::new(4096).block(), Block::new(64));
    }

    #[test]
    fn page_of_address_and_block() {
        assert_eq!(Address::new(4095).page(), 0);
        assert_eq!(Address::new(4096).page(), 1);
        assert_eq!(Block::new(63).page(), 0);
        assert_eq!(Block::new(64).page(), 1);
    }

    #[test]
    fn block_base_roundtrip() {
        let b = Block::new(17);
        assert_eq!(b.base_address().block(), b);
        assert_eq!(b.base_address().block_offset(), 0);
    }

    #[test]
    fn stride_between_blocks() {
        assert_eq!(Block::new(10).stride_from(Block::new(7)), 3);
        assert_eq!(Block::new(7).stride_from(Block::new(10)), -3);
        assert_eq!(Block::new(5).stride_from(Block::new(5)), 0);
    }

    #[test]
    fn block_signed_offset() {
        assert_eq!(Block::new(10).offset(-3), Block::new(7));
        assert_eq!(Block::new(10).offset(3), Block::new(13));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Address::new(0x40).to_string(), "0x40");
        assert_eq!(Block::new(0x40).to_string(), "blk:0x40");
        assert_eq!(format!("{:x}", Address::new(255)), "ff");
    }
}
