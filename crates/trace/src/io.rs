//! Compact binary (de)serialization of miss traces.
//!
//! Full traces run to millions of records; this module provides a simple
//! little-endian binary format so traces can be collected once and re-analyzed
//! many times (the paper's collect-then-analyze workflow). The format is:
//!
//! ```text
//! magic  "TSMT"            4 bytes
//! version u16              currently 1
//! class_tag u8             0 = MissClass, 1 = IntraChipClass
//! num_cpus u32
//! instructions u64
//! record_count u64
//! records: { block u64, cpu u32, thread u32, function u32, class u8 } *
//! ```

use crate::category::{IntraChipClass, MissClass};
use crate::ids::{CpuId, FunctionId, ThreadId};
use crate::miss::{MissRecord, MissTrace};
use crate::Block;
use std::fmt;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"TSMT";
const VERSION: u16 = 1;

/// Encoded bytes per record: block (8) + cpu (4) + thread (4) +
/// function (4) + class (1).
///
/// Public because the record encoding is shared with the
/// `tempstream-serve` wire protocol, whose ingest frames carry runs of
/// records in exactly this layout.
pub const RECORD_BYTES: usize = 21;

/// Records decoded per bulk read in [`read_trace`] (~688 KB chunks).
/// Bounded so a hostile header count cannot drive the allocation.
const CHUNK_RECORDS: u64 = 1 << 15;

/// Errors produced when reading a serialized miss trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The class tag does not match the requested trace type.
    ClassMismatch {
        /// Tag the caller's trace type requires.
        expected: u8,
        /// Tag found in the stream header.
        found: u8,
    },
    /// A record contained an invalid class byte.
    BadClass(u8),
    /// The stream ended before the header's record count was satisfied.
    TruncatedRecords {
        /// Records promised by the header.
        expected: u64,
        /// Records actually present before the stream ended.
        read: u64,
    },
    /// A record named a CPU outside the header's `num_cpus` range.
    ///
    /// Analyses index per-CPU tables by `cpu`, so an out-of-range id in a
    /// corrupt trace would otherwise panic far from the read site.
    CpuOutOfRange {
        /// CPU id found in the record.
        cpu: u32,
        /// CPU count promised by the header.
        num_cpus: u32,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => write!(f, "input is not a serialized miss trace"),
            ReadTraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::ClassMismatch { expected, found } => write!(
                f,
                "trace class tag {found} does not match requested type (tag {expected})"
            ),
            ReadTraceError::BadClass(b) => write!(f, "invalid class byte {b} in record"),
            ReadTraceError::TruncatedRecords { expected, read } => write!(
                f,
                "trace truncated: header promised {expected} records, found {read}"
            ),
            ReadTraceError::CpuOutOfRange { cpu, num_cpus } => write!(
                f,
                "record names cpu {cpu} but header promised only {num_cpus} cpus"
            ),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// A miss classification that can be encoded in the binary trace format.
///
/// This trait is sealed; it is implemented exactly for [`MissClass`] and
/// [`IntraChipClass`].
pub trait TraceClass: sealed::Sealed + Copy {
    /// Distinguishes off-chip from intra-chip traces in the header.
    const TAG: u8;

    /// Encodes the class as a byte.
    fn to_byte(self) -> u8;

    /// Decodes the class from a byte.
    fn from_byte(b: u8) -> Option<Self>;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::MissClass {}
    impl Sealed for super::IntraChipClass {}
}

impl TraceClass for MissClass {
    const TAG: u8 = 0;

    fn to_byte(self) -> u8 {
        match self {
            MissClass::Compulsory => 0,
            MissClass::IoCoherence => 1,
            MissClass::Coherence => 2,
            MissClass::Replacement => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => MissClass::Compulsory,
            1 => MissClass::IoCoherence,
            2 => MissClass::Coherence,
            3 => MissClass::Replacement,
            _ => return None,
        })
    }
}

impl TraceClass for IntraChipClass {
    const TAG: u8 = 1;

    fn to_byte(self) -> u8 {
        match self {
            IntraChipClass::CoherencePeerL1 => 0,
            IntraChipClass::CoherenceL2 => 1,
            IntraChipClass::ReplacementL2 => 2,
            IntraChipClass::OffChip => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => IntraChipClass::CoherencePeerL1,
            1 => IntraChipClass::CoherenceL2,
            2 => IntraChipClass::ReplacementL2,
            3 => IntraChipClass::OffChip,
            _ => return None,
        })
    }
}

/// Appends one record to `buf` in the fixed [`RECORD_BYTES`]-byte
/// little-endian layout (`block u64, cpu u32, thread u32, function u32,
/// class u8`).
///
/// This is the single encoding used by both the trace files written by
/// [`write_trace`] and the `tempstream-serve` ingest frames.
pub fn encode_record<C: TraceClass>(record: &MissRecord<C>, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&record.block.raw().to_le_bytes());
    buf.extend_from_slice(&record.cpu.raw().to_le_bytes());
    buf.extend_from_slice(&record.thread.raw().to_le_bytes());
    buf.extend_from_slice(&record.function.raw().to_le_bytes());
    buf.push(record.class.to_byte());
}

/// Decodes one record from exactly [`RECORD_BYTES`] bytes previously
/// produced by [`encode_record`].
///
/// # Errors
///
/// Returns [`ReadTraceError::BadClass`] when the class byte is invalid
/// for `C`.
///
/// # Panics
///
/// Panics if `bytes.len() != RECORD_BYTES`; callers frame records into
/// fixed-size chunks before decoding.
pub fn decode_record<C: TraceClass>(bytes: &[u8]) -> Result<MissRecord<C>, ReadTraceError> {
    assert_eq!(bytes.len(), RECORD_BYTES, "record must be {RECORD_BYTES}B");
    let field = |lo: usize, hi: usize| -> [u8; 4] { bytes[lo..hi].try_into().expect("4B field") };
    let class_byte = bytes[RECORD_BYTES - 1];
    let class = C::from_byte(class_byte).ok_or(ReadTraceError::BadClass(class_byte))?;
    Ok(MissRecord {
        block: Block::new(u64::from_le_bytes(
            bytes[0..8].try_into().expect("8-byte field"),
        )),
        cpu: CpuId::new(u32::from_le_bytes(field(8, 12))),
        thread: ThreadId::new(u32::from_le_bytes(field(12, 16))),
        function: FunctionId::new(u32::from_le_bytes(field(16, 20))),
        class,
    })
}

/// Writes `trace` to `writer` in the binary trace format.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_trace<C: TraceClass, W: Write>(
    trace: &MissTrace<C>,
    mut writer: W,
) -> std::io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&[C::TAG])?;
    writer.write_all(&trace.num_cpus().to_le_bytes())?;
    writer.write_all(&trace.instructions().to_le_bytes())?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(trace.len().min(1 << 16) * RECORD_BYTES);
    for r in trace.records() {
        encode_record(r, &mut buf);
        if buf.len() >= 1 << 20 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`ReadTraceError`] on malformed input, a class-type mismatch, or
/// an underlying I/O error.
pub fn read_trace<C: TraceClass, R: Read>(mut reader: R) -> Result<MissTrace<C>, ReadTraceError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    let version = read_u16(&mut reader)?;
    if version != VERSION {
        return Err(ReadTraceError::BadVersion(version));
    }
    let tag = read_u8(&mut reader)?;
    if tag != C::TAG {
        return Err(ReadTraceError::ClassMismatch {
            expected: C::TAG,
            found: tag,
        });
    }
    let num_cpus = read_u32(&mut reader)?;
    let instructions = read_u64(&mut reader)?;
    let count = read_u64(&mut reader)?;
    let mut trace = MissTrace::new(num_cpus);
    trace.set_instructions(instructions);
    // Records decode from bulk chunks rather than five tiny reads per
    // record — on a spill-file reload that's one `read` per ~688 KB
    // instead of five per 21-byte record. Within the record region,
    // premature EOF means the header's count and the payload disagree —
    // reported as `TruncatedRecords` (with `read` = whole records
    // present) rather than a bare I/O error so callers can distinguish
    // corruption from a broken pipe elsewhere.
    let mut chunk = vec![0u8; count.min(CHUNK_RECORDS) as usize * RECORD_BYTES];
    let mut read_done: u64 = 0;
    while read_done < count {
        let want = (count - read_done).min(CHUNK_RECORDS) as usize * RECORD_BYTES;
        let (got, io_err) = fill(&mut reader, &mut chunk[..want]);
        let whole = got / RECORD_BYTES;
        for rec in chunk[..whole * RECORD_BYTES].chunks_exact(RECORD_BYTES) {
            let record = decode_record::<C>(rec)?;
            if record.cpu.raw() >= num_cpus {
                return Err(ReadTraceError::CpuOutOfRange {
                    cpu: record.cpu.raw(),
                    num_cpus,
                });
            }
            trace.push(record);
        }
        read_done += whole as u64;
        if got < want {
            return Err(match io_err {
                Some(e) if e.kind() != std::io::ErrorKind::UnexpectedEof => ReadTraceError::Io(e),
                _ => ReadTraceError::TruncatedRecords {
                    expected: count,
                    read: read_done,
                },
            });
        }
    }
    Ok(trace)
}

/// Reads until `buf` is full or the stream ends, returning the bytes
/// filled and any hard (non-EOF) error. Complete records in front of an
/// error are still decoded by the caller, matching the record-at-a-time
/// reader this replaced.
fn fill<R: Read>(reader: &mut R, buf: &mut [u8]) -> (usize, Option<std::io::Error>) {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return (filled, Some(e)),
        }
    }
    (filled, None)
}

/// Writes `trace` as CSV (`seq,block,cpu,thread,function,class`), with the
/// class rendered through its byte encoding. Intended for external
/// analysis tools (pandas, gnuplot); the binary format is the round-trip
/// format.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_trace_csv<C: TraceClass, W: Write>(
    trace: &MissTrace<C>,
    symbols: Option<&crate::symbol::SymbolTable>,
    mut writer: W,
) -> std::io::Result<()> {
    writeln!(writer, "seq,block,cpu,thread,function,class")?;
    for (i, r) in trace.records().iter().enumerate() {
        let function: std::borrow::Cow<'_, str> = match symbols {
            Some(s) if r.function.index() < s.len() => s.name(r.function).into(),
            _ => r.function.raw().to_string().into(),
        };
        writeln!(
            writer,
            "{},{:#x},{},{},{},{}",
            i,
            r.block.raw(),
            r.cpu.raw(),
            r.thread.raw(),
            function,
            r.class.to_byte()
        )?;
    }
    Ok(())
}

fn read_u8<R: Read>(r: &mut R) -> std::io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u16<R: Read>(r: &mut R) -> std::io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> MissTrace<MissClass> {
        let mut t = MissTrace::new(4);
        t.set_instructions(123_456);
        for i in 0..100u64 {
            t.push(MissRecord {
                block: Block::new(i * 3),
                cpu: CpuId::new((i % 4) as u32),
                thread: ThreadId::new((i % 7) as u32),
                function: FunctionId::new((i % 11) as u32),
                class: MissClass::from_byte((i % 4) as u8).unwrap(),
            });
        }
        t
    }

    #[test]
    fn roundtrip_offchip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back: MissTrace<MissClass> = read_trace(&buf[..]).unwrap();
        assert_eq!(back.num_cpus(), t.num_cpus());
        assert_eq!(back.instructions(), t.instructions());
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn roundtrip_intrachip() {
        let mut t: MissTrace<IntraChipClass> = MissTrace::new(2);
        t.push(MissRecord {
            block: Block::new(9),
            cpu: CpuId::new(1),
            thread: ThreadId::new(1),
            function: FunctionId::new(2),
            class: IntraChipClass::CoherencePeerL1,
        });
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back: MissTrace<IntraChipClass> = read_trace(&buf[..]).unwrap();
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn class_tag_mismatch_detected() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let err = read_trace::<IntraChipClass, _>(&buf[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::ClassMismatch { .. }));
    }

    #[test]
    fn bad_magic_detected() {
        let err = read_trace::<MissClass, _>(&b"NOPE0000"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
    }

    #[test]
    fn truncated_records_are_distinguished() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_trace::<MissClass, _>(&buf[..]).unwrap_err();
        assert!(matches!(
            err,
            ReadTraceError::TruncatedRecords {
                expected: 100,
                read: 99
            }
        ));
    }

    #[test]
    fn truncated_header_is_io_error() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        // Cut inside the fixed-size header, before any record bytes.
        buf.truncate(10);
        let err = read_trace::<MissClass, _>(&buf[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::Io(_)));
    }

    #[test]
    fn out_of_range_cpu_detected() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        // Corrupt the first record's cpu field (header is 27 bytes, cpu
        // sits after the 8-byte block).
        let cpu_off = 27 + 8;
        buf[cpu_off..cpu_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_trace::<MissClass, _>(&buf[..]).unwrap_err();
        assert!(matches!(
            err,
            ReadTraceError::CpuOutOfRange {
                cpu: u32::MAX,
                num_cpus: 4
            }
        ));
    }

    #[test]
    fn csv_export_renders_names_and_rows() {
        let mut sym = crate::symbol::SymbolTable::new();
        sym.intern("memcpy", crate::category::MissCategory::BulkMemoryCopy);
        let mut t: MissTrace<MissClass> = MissTrace::new(1);
        t.push(MissRecord {
            block: Block::new(0x10),
            cpu: CpuId::new(0),
            thread: ThreadId::new(0),
            function: FunctionId::new(0),
            class: MissClass::Coherence,
        });
        let mut buf = Vec::new();
        write_trace_csv(&t, Some(&sym), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("seq,block,cpu"));
        assert!(text.contains("0,0x10,0,0,memcpy,2"));
    }

    #[test]
    fn csv_export_without_symbols_uses_ids() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace_csv(&t, None, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 101);
        assert!(text.lines().nth(1).unwrap().contains(",0,"));
    }

    #[test]
    fn record_codec_roundtrip_and_bad_class() {
        for r in sample_trace().records() {
            let mut buf = Vec::new();
            encode_record(r, &mut buf);
            assert_eq!(buf.len(), RECORD_BYTES);
            assert_eq!(&decode_record::<MissClass>(&buf).unwrap(), r);
        }
        let mut buf = vec![0u8; RECORD_BYTES];
        buf[RECORD_BYTES - 1] = 99;
        assert!(matches!(
            decode_record::<MissClass>(&buf),
            Err(ReadTraceError::BadClass(99))
        ));
    }

    #[test]
    fn class_byte_roundtrip() {
        for c in MissClass::ALL {
            assert_eq!(MissClass::from_byte(c.to_byte()), Some(c));
        }
        for c in IntraChipClass::ALL {
            assert_eq!(IntraChipClass::from_byte(c.to_byte()), Some(c));
        }
        assert_eq!(MissClass::from_byte(99), None);
        assert_eq!(IntraChipClass::from_byte(99), None);
    }
}
