//! Function-name interning and category mapping.
//!
//! The paper ties misses to code modules through function names embedded in
//! the application binaries and the Solaris kernel. Our generators intern
//! their model functions here; the table carries the (function → Table-2
//! category) assignment that Section 5 of the paper builds by hand.

use crate::category::MissCategory;
use crate::ids::FunctionId;
use std::collections::HashMap;

/// An interning table mapping function names to [`FunctionId`]s and each
/// function to its [`MissCategory`].
///
/// # Example
///
/// ```
/// use tempstream_trace::prelude::*;
///
/// let mut t = SymbolTable::new();
/// let f = t.intern("Perl_sv_gets", MissCategory::CgiPerlInput);
/// assert_eq!(t.name(f), "Perl_sv_gets");
/// assert_eq!(t.category(f), MissCategory::CgiPerlInput);
/// assert_eq!(t.intern("Perl_sv_gets", MissCategory::CgiPerlInput), f);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    categories: Vec<MissCategory>,
    by_name: HashMap<String, FunctionId>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, assigning it `category` if new.
    ///
    /// Re-interning an existing name returns its existing id; the category is
    /// left unchanged (first assignment wins), mirroring the paper's
    /// iterative-refinement workflow where each function has one category.
    pub fn intern(&mut self, name: &str, category: MissCategory) -> FunctionId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = FunctionId::new(
            u32::try_from(self.names.len()).expect("more than u32::MAX interned functions"),
        );
        self.names.push(name.to_owned());
        self.categories.push(category);
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a function id by exact name.
    pub fn lookup(&self, name: &str) -> Option<FunctionId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: FunctionId) -> &str {
        &self.names[id.index()]
    }

    /// Returns the category of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn category(&self, id: FunctionId) -> MissCategory {
        self.categories[id.index()]
    }

    /// Number of interned functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no functions are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name, category)` triples in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &str, MissCategory)> + '_ {
        self.names
            .iter()
            .zip(&self.categories)
            .enumerate()
            .map(|(i, (name, &cat))| (FunctionId::new(i as u32), name.as_str(), cat))
    }

    /// All function ids assigned to `category`.
    pub fn functions_in(&self, category: MissCategory) -> Vec<FunctionId> {
        self.iter()
            .filter(|&(_, _, c)| c == category)
            .map(|(id, _, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::MissCategory as C;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("memcpy", C::BulkMemoryCopy);
        let b = t.intern("memcpy", C::BulkMemoryCopy);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn first_category_wins() {
        let mut t = SymbolTable::new();
        let a = t.intern("poll", C::SystemCall);
        let b = t.intern("poll", C::KernelOther);
        assert_eq!(a, b);
        assert_eq!(t.category(a), C::SystemCall);
    }

    #[test]
    fn lookup_and_iter() {
        let mut t = SymbolTable::new();
        let f1 = t.intern("disp_getwork", C::KernelScheduler);
        let f2 = t.intern("dispdeq", C::KernelScheduler);
        let f3 = t.intern("mutex_enter", C::KernelSynchronization);
        assert_eq!(t.lookup("dispdeq"), Some(f2));
        assert_eq!(t.lookup("nonexistent"), None);
        assert_eq!(t.functions_in(C::KernelScheduler), vec![f1, f2]);
        assert_eq!(t.functions_in(C::KernelSynchronization), vec![f3]);
        let items: Vec<_> = t.iter().collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].1, "disp_getwork");
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.lookup("x"), None);
    }
}
