//! Read-miss records and miss traces.
//!
//! A [`MissTrace`] is the artifact the paper's entire analysis consumes: an
//! ordered sequence of classified read misses, plus the instruction count
//! over which it was collected (for the misses-per-1000-instructions axis of
//! Figure 1).

use crate::addr::Block;
use crate::category::{IntraChipClass, MissClass};
use crate::ids::{CpuId, FunctionId, ThreadId};

/// One classified read miss.
///
/// The classification type `C` is [`MissClass`] for off-chip traces and
/// [`IntraChipClass`] for intra-chip traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MissRecord<C> {
    /// The missing cache block.
    pub block: Block,
    /// The processor that observed the miss.
    pub cpu: CpuId,
    /// The software thread running at the miss.
    pub thread: ThreadId,
    /// The enclosing function at the miss.
    pub function: FunctionId,
    /// The miss classification.
    pub class: C,
}

/// An off-chip read-miss record.
pub type OffChipMiss = MissRecord<MissClass>;

/// An intra-chip (L1) read-miss record.
pub type IntraChipMiss = MissRecord<IntraChipClass>;

/// An ordered trace of classified read misses.
#[derive(Debug, Clone, Default)]
pub struct MissTrace<C> {
    records: Vec<MissRecord<C>>,
    instructions: u64,
    num_cpus: u32,
}

impl<C: Copy> MissTrace<C> {
    /// Creates an empty trace for a `num_cpus`-processor system.
    pub fn new(num_cpus: u32) -> Self {
        MissTrace {
            records: Vec::new(),
            instructions: 0,
            num_cpus,
        }
    }

    /// Appends a miss record.
    pub fn push(&mut self, record: MissRecord<C>) {
        debug_assert!(record.cpu.raw() < self.num_cpus, "cpu out of range");
        self.records.push(record);
    }

    /// Sets the number of instructions executed while collecting the trace.
    pub fn set_instructions(&mut self, instructions: u64) {
        self.instructions = instructions;
    }

    /// Instructions executed while the trace was collected.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of processors in the traced system.
    pub fn num_cpus(&self) -> u32 {
        self.num_cpus
    }

    /// Number of misses in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace holds no misses.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The miss records, in trace order.
    pub fn records(&self) -> &[MissRecord<C>] {
        &self.records
    }

    /// Keeps only the first `len` misses, dropping the rest (no-op when
    /// the trace is already at most `len` long). The instruction count
    /// is left untouched: it describes the collection window, not the
    /// retained prefix.
    pub fn truncate(&mut self, len: usize) {
        self.records.truncate(len);
        self.records.shrink_to_fit();
    }

    /// Iterates over miss records in trace order.
    pub fn iter(&self) -> std::slice::Iter<'_, MissRecord<C>> {
        self.records.iter()
    }

    /// Misses per 1000 executed instructions (the Figure 1 y-axis).
    ///
    /// Returns 0.0 if the instruction count was never set.
    pub fn misses_per_kilo_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.records.len() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Per-CPU miss counts, indexed by CPU id.
    pub fn per_cpu_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_cpus as usize];
        for r in &self.records {
            counts[r.cpu.index()] += 1;
        }
        counts
    }

    /// The block-address sequence of the trace (the SEQUITUR input).
    pub fn block_sequence(&self) -> Vec<Block> {
        self.records.iter().map(|r| r.block).collect()
    }
}

impl<C: Copy + Eq + std::hash::Hash> MissTrace<C> {
    /// Histogram of miss classes, as (class, count) pairs in first-seen order.
    pub fn class_histogram(&self) -> Vec<(C, u64)> {
        let mut order: Vec<C> = Vec::new();
        let mut counts: std::collections::HashMap<C, u64> = std::collections::HashMap::new();
        for r in &self.records {
            if !counts.contains_key(&r.class) {
                order.push(r.class);
            }
            *counts.entry(r.class).or_insert(0) += 1;
        }
        order.into_iter().map(|c| (c, counts[&c])).collect()
    }

    /// Count of misses with the given class.
    pub fn count_class(&self, class: C) -> u64 {
        self.records.iter().filter(|r| r.class == class).count() as u64
    }
}

impl<C: Copy> Extend<MissRecord<C>> for MissTrace<C> {
    fn extend<T: IntoIterator<Item = MissRecord<C>>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

impl<'a, C> IntoIterator for &'a MissTrace<C> {
    type Item = &'a MissRecord<C>;
    type IntoIter = std::slice::Iter<'a, MissRecord<C>>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::MissClass as MC;

    fn rec(block: u64, cpu: u32, class: MC) -> OffChipMiss {
        MissRecord {
            block: Block::new(block),
            cpu: CpuId::new(cpu),
            thread: ThreadId::new(cpu),
            function: FunctionId::new(0),
            class,
        }
    }

    #[test]
    fn push_and_counts() {
        let mut t = MissTrace::new(2);
        t.push(rec(1, 0, MC::Compulsory));
        t.push(rec(2, 1, MC::Coherence));
        t.push(rec(1, 1, MC::Coherence));
        assert_eq!(t.len(), 3);
        assert_eq!(t.per_cpu_counts(), vec![1, 2]);
        assert_eq!(t.count_class(MC::Coherence), 2);
        assert_eq!(t.count_class(MC::Replacement), 0);
    }

    #[test]
    fn mpki() {
        let mut t: MissTrace<MC> = MissTrace::new(1);
        assert_eq!(t.misses_per_kilo_instruction(), 0.0);
        t.push(rec(1, 0, MC::Compulsory));
        t.push(rec(2, 0, MC::Compulsory));
        t.set_instructions(1000);
        assert!((t.misses_per_kilo_instruction() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_orders_by_first_seen() {
        let mut t = MissTrace::new(1);
        t.push(rec(1, 0, MC::Replacement));
        t.push(rec(2, 0, MC::Compulsory));
        t.push(rec(3, 0, MC::Replacement));
        let h = t.class_histogram();
        assert_eq!(h, vec![(MC::Replacement, 2), (MC::Compulsory, 1)]);
    }

    #[test]
    fn block_sequence_preserves_order() {
        let mut t = MissTrace::new(1);
        for b in [5u64, 3, 5, 9] {
            t.push(rec(b, 0, MC::Compulsory));
        }
        let seq: Vec<u64> = t.block_sequence().iter().map(|b| b.raw()).collect();
        assert_eq!(seq, vec![5, 3, 5, 9]);
    }

    #[test]
    fn truncate_keeps_prefix_and_instructions() {
        let mut t = MissTrace::new(1);
        for b in 0..10u64 {
            t.push(rec(b, 0, MC::Compulsory));
        }
        t.set_instructions(5000);
        t.truncate(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[2].block.raw(), 2);
        assert_eq!(t.instructions(), 5000);
        t.truncate(100); // longer than the trace: no-op
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn extend_and_into_iter() {
        let mut t = MissTrace::new(1);
        t.extend([rec(1, 0, MC::Compulsory), rec(2, 0, MC::Compulsory)]);
        let blocks: Vec<u64> = (&t).into_iter().map(|r| r.block.raw()).collect();
        assert_eq!(blocks, vec![1, 2]);
    }
}
