//! Compile-time thread-safety assertions.
//!
//! The parallel runtime moves traces, records, symbol tables and whole
//! workload sessions across worker threads. A stray `Rc` or `RefCell`
//! added deep inside a workload model would silently make those types
//! `!Send` and break the parallel path at its use site, far from the
//! offending field. [`assert_send_sync!`] turns that into a compile
//! error at the type's home crate instead: each crate asserts the
//! bounds for the types it exports to the runtime.

/// Asserts at compile time that each listed type is `Send + Sync`.
///
/// Expands to a dead `const` item, so it costs nothing at runtime and
/// works in any item position:
///
/// ```
/// use tempstream_trace::assert_send_sync;
///
/// struct Shared(Vec<u64>);
/// assert_send_sync!(Shared, Vec<Shared>);
/// ```
///
/// A type that is not `Send + Sync` fails to compile:
///
/// ```compile_fail
/// use tempstream_trace::assert_send_sync;
///
/// struct NotSync(std::rc::Rc<u8>);
/// assert_send_sync!(NotSync);
/// ```
#[macro_export]
macro_rules! assert_send_sync {
    ($($ty:ty),+ $(,)?) => {
        const _: fn() = || {
            fn assert_bounds<T: Send + Sync>() {}
            $(assert_bounds::<$ty>();)+
        };
    };
}

// The trace-layer types the runtime ships between threads.
assert_send_sync!(
    crate::access::MemoryAccess,
    crate::miss::MissRecord<crate::category::MissClass>,
    crate::miss::MissRecord<crate::category::IntraChipClass>,
    crate::miss::MissTrace<crate::category::MissClass>,
    crate::miss::MissTrace<crate::category::IntraChipClass>,
    crate::symbol::SymbolTable,
    crate::io::ReadTraceError,
);
