//! The memory-access record emitted by workload generators.

use crate::addr::{Address, Block};
use crate::ids::{CpuId, FunctionId, ThreadId};

/// The kind of a memory access.
///
/// The paper traces *read* misses only, but writes, DMA transfers, and
/// Solaris `default_copyout`-style non-allocating stores all update coherence
/// state and drive the miss classification, so the generators emit them too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An ordinary processor load.
    Read,
    /// An ordinary processor store.
    Write,
    /// A DMA write from an I/O device; invalidates all cached copies.
    DmaWrite,
    /// A bulk kernel-to-user copy store using non-allocating (block-store)
    /// instructions, as in the Solaris `default_copyout` family.
    CopyoutWrite,
}

impl AccessKind {
    /// Returns `true` for processor-initiated accesses (read/write).
    pub fn is_cpu(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Write)
    }

    /// Returns `true` for any access that mutates memory.
    pub fn is_write(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// One memory access, annotated with its execution context.
///
/// `function` identifies the enclosing function (the paper inspects the call
/// stack at each miss and picks the innermost recognizable function); the
/// symbol table maps it to a Table-2
/// [`MissCategory`](crate::category::MissCategory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryAccess {
    /// Byte address accessed.
    pub addr: Address,
    /// Kind of access.
    pub kind: AccessKind,
    /// Issuing processor. For DMA writes, the convention is the processor
    /// that programmed the transfer (it does not affect classification).
    pub cpu: CpuId,
    /// Issuing software thread.
    pub thread: ThreadId,
    /// Enclosing function at the time of the access.
    pub function: FunctionId,
}

impl MemoryAccess {
    /// Creates an access record.
    pub fn new(
        addr: Address,
        kind: AccessKind,
        cpu: CpuId,
        thread: ThreadId,
        function: FunctionId,
    ) -> Self {
        MemoryAccess {
            addr,
            kind,
            cpu,
            thread,
            function,
        }
    }

    /// Convenience constructor for a read on thread 0 of `cpu`.
    pub fn read(addr: Address, cpu: CpuId, function: FunctionId) -> Self {
        Self::new(
            addr,
            AccessKind::Read,
            cpu,
            ThreadId::new(cpu.raw()),
            function,
        )
    }

    /// Convenience constructor for a write on thread 0 of `cpu`.
    pub fn write(addr: Address, cpu: CpuId, function: FunctionId) -> Self {
        Self::new(
            addr,
            AccessKind::Write,
            cpu,
            ThreadId::new(cpu.raw()),
            function,
        )
    }

    /// The cache block this access touches.
    pub fn block(&self) -> Block {
        self.addr.block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert!(AccessKind::Read.is_cpu());
        assert!(AccessKind::Write.is_cpu());
        assert!(!AccessKind::DmaWrite.is_cpu());
        assert!(!AccessKind::CopyoutWrite.is_cpu());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::DmaWrite.is_write());
        assert!(AccessKind::CopyoutWrite.is_write());
    }

    #[test]
    fn block_of_access() {
        let a = MemoryAccess::read(Address::new(130), CpuId::new(1), FunctionId::new(0));
        assert_eq!(a.block(), Block::new(2));
        assert_eq!(a.kind, AccessKind::Read);
        assert_eq!(a.cpu, CpuId::new(1));
    }
}
