//! Identifier newtypes for CPUs, threads and functions.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from its raw index.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize`, for table lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }
    };
}

id_newtype!(
    /// A logical processor (core in the single-chip model, node in the
    /// multi-chip model).
    CpuId,
    "cpu"
);

id_newtype!(
    /// A software thread, as recorded by the tracing infrastructure.
    ThreadId,
    "thr"
);

id_newtype!(
    /// An interned function name; resolve through a
    /// [`SymbolTable`](crate::symbol::SymbolTable).
    FunctionId,
    "fn"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        assert_eq!(CpuId::new(3).raw(), 3);
        assert_eq!(ThreadId::from(9u32).index(), 9);
        assert_eq!(FunctionId::new(0).index(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(CpuId::new(2).to_string(), "cpu2");
        assert_eq!(ThreadId::new(5).to_string(), "thr5");
        assert_eq!(FunctionId::new(7).to_string(), "fn7");
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(CpuId::new(1) < CpuId::new(2));
        assert_eq!(FunctionId::new(4), FunctionId::new(4));
    }
}
