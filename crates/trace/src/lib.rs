//! Base types shared by every crate in the temporal-streams suite.
//!
//! This crate models the *artifact* the paper's analysis consumes: labeled
//! memory-access streams and read-miss traces. It defines:
//!
//! - physical [`Address`]es and cache-[`Block`] addresses ([`addr`]),
//! - identifier newtypes for CPUs, threads and functions ([`ids`]),
//! - the [`access::MemoryAccess`] record emitted by workload generators,
//! - the "4 C's"-style miss classes and the paper's Table-2 code-module
//!   taxonomy ([`category`]),
//! - a [`symbol::SymbolTable`] interning function names and mapping them to
//!   categories,
//! - the [`miss::MissRecord`] / [`miss::MissTrace`] containers produced by the
//!   memory-system simulators and consumed by the stream analysis,
//! - a compact binary (de)serialization of miss traces ([`io`]).
//!
//! # Example
//!
//! ```
//! use tempstream_trace::prelude::*;
//!
//! let mut symbols = SymbolTable::new();
//! let f = symbols.intern("disp_getwork", MissCategory::KernelScheduler);
//! let access = MemoryAccess::read(Address::new(0x1000), CpuId::new(0), f);
//! assert_eq!(access.block(), Block::containing(Address::new(0x1000)));
//! ```

pub mod access;
pub mod addr;
pub mod category;
pub mod ids;
pub mod io;
pub mod miss;
pub mod rng;
pub mod sink;
pub mod stats;
pub mod symbol;
pub mod threading;

/// Convenient re-exports of the types used by nearly every downstream crate.
pub mod prelude {
    pub use crate::access::{AccessKind, MemoryAccess};
    pub use crate::addr::{Address, Block, BLOCK_BYTES, PAGE_BYTES};
    pub use crate::category::{AppClass, IntraChipClass, MissCategory, MissClass};
    pub use crate::ids::{CpuId, FunctionId, ThreadId};
    pub use crate::miss::{MissRecord, MissTrace};
    pub use crate::sink::AccessSink;
    pub use crate::stats::TraceStats;
    pub use crate::symbol::SymbolTable;
}

pub use prelude::*;
