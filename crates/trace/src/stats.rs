//! Summary statistics over miss traces.
//!
//! Used by the reporting binaries to describe a trace before analysis:
//! footprint, per-CPU balance, and per-class counts in one pass.

use crate::addr::{Block, BLOCK_BYTES};
use crate::miss::MissTrace;
use std::collections::HashSet;
use std::fmt;

/// One-pass summary of a miss trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Total misses.
    pub misses: u64,
    /// Distinct cache blocks missed on.
    pub unique_blocks: u64,
    /// Instructions the trace covers.
    pub instructions: u64,
    /// Per-CPU miss counts.
    pub per_cpu: Vec<u64>,
    /// Lowest and highest block touched (address-space extent).
    pub block_range: Option<(Block, Block)>,
}

impl TraceStats {
    /// Computes the summary.
    pub fn of_trace<C: Copy>(trace: &MissTrace<C>) -> Self {
        let mut unique: HashSet<Block> = HashSet::new();
        let mut lo: Option<Block> = None;
        let mut hi: Option<Block> = None;
        for r in trace.records() {
            unique.insert(r.block);
            lo = Some(lo.map_or(r.block, |b| b.min(r.block)));
            hi = Some(hi.map_or(r.block, |b| b.max(r.block)));
        }
        TraceStats {
            misses: trace.len() as u64,
            unique_blocks: unique.len() as u64,
            instructions: trace.instructions(),
            per_cpu: trace.per_cpu_counts(),
            block_range: lo.zip(hi),
        }
    }

    /// Missed footprint in bytes (unique blocks × block size).
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_blocks * BLOCK_BYTES
    }

    /// Average times each missed block recurs in the trace.
    pub fn reuse_factor(&self) -> f64 {
        if self.unique_blocks == 0 {
            0.0
        } else {
            self.misses as f64 / self.unique_blocks as f64
        }
    }

    /// Imbalance across CPUs: max per-CPU share over the ideal share
    /// (1.0 = perfectly balanced).
    pub fn cpu_imbalance(&self) -> f64 {
        let total: u64 = self.per_cpu.iter().sum();
        if total == 0 || self.per_cpu.is_empty() {
            return 1.0;
        }
        let max = *self.per_cpu.iter().max().expect("non-empty") as f64;
        max * self.per_cpu.len() as f64 / total as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} misses over {} unique blocks ({:.1} MB footprint), \
             reuse x{:.1}, cpu imbalance {:.2}",
            self.misses,
            self.unique_blocks,
            self.footprint_bytes() as f64 / (1024.0 * 1024.0),
            self.reuse_factor(),
            self.cpu_imbalance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miss::MissRecord;
    use crate::{CpuId, FunctionId, MissClass, ThreadId};

    fn trace(blocks: &[(u64, u32)]) -> MissTrace<MissClass> {
        let cpus = blocks.iter().map(|&(_, c)| c).max().unwrap_or(0) + 1;
        let mut t = MissTrace::new(cpus);
        for &(b, c) in blocks {
            t.push(MissRecord {
                block: Block::new(b),
                cpu: CpuId::new(c),
                thread: ThreadId::new(c),
                function: FunctionId::new(0),
                class: MissClass::Replacement,
            });
        }
        t
    }

    #[test]
    fn counts_and_footprint() {
        let t = trace(&[(1, 0), (2, 0), (1, 1), (5, 1)]);
        let s = TraceStats::of_trace(&t);
        assert_eq!(s.misses, 4);
        assert_eq!(s.unique_blocks, 3);
        assert_eq!(s.footprint_bytes(), 3 * 64);
        assert!((s.reuse_factor() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.block_range, Some((Block::new(1), Block::new(5))));
        assert_eq!(s.per_cpu, vec![2, 2]);
        assert!((s.cpu_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_skew() {
        let t = trace(&[(1, 0), (2, 0), (3, 0), (4, 1)]);
        let s = TraceStats::of_trace(&t);
        assert!((s.cpu_imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = trace(&[]);
        let s = TraceStats::of_trace(&t);
        assert_eq!(s.misses, 0);
        assert_eq!(s.block_range, None);
        assert_eq!(s.reuse_factor(), 0.0);
        assert!(!s.to_string().is_empty());
    }
}
