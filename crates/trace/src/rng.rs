//! Small, deterministic, dependency-free pseudo-random number generators.
//!
//! The workload models and the randomized tests need reproducible,
//! seedable randomness but no cryptographic strength. This module provides
//! the two classic generators used throughout the suite:
//!
//! - [`SplitMix64`] — a one-u64-of-state stream used to expand a seed into
//!   the larger state of [`SmallRng`] (and usable on its own for cheap
//!   decorrelated streams);
//! - [`SmallRng`] — xoshiro256\*\* (Blackman & Vigna), the same algorithm
//!   family `rand`'s `SmallRng` uses on 64-bit targets, with an
//!   API-compatible `seed_from_u64` / `gen_range` / `gen_ratio` surface so
//!   call sites read identically to the `rand` crate they replace.
//!
//! Both generators are fully deterministic functions of their seed, which
//! the paper-reproduction methodology depends on: every figure regenerates
//! bit-identically from the workload seed.
//!
//! # Example
//!
//! ```
//! use tempstream_trace::rng::SmallRng;
//!
//! let mut a = SmallRng::seed_from_u64(42);
//! let mut b = SmallRng::seed_from_u64(42);
//! assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, fast generator with 64 bits of state.
///
/// Primarily used to seed [`SmallRng`], following Vigna's recommendation
/// that xoshiro state never be seeded with correlated words.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the suite's general-purpose small PRNG.
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality for
/// simulation workloads. The name and method set deliberately mirror
/// `rand::rngs::SmallRng` so replacing the registry dependency was a pure
/// import change.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose state is expanded from `seed` via
    /// [`SplitMix64`].
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        SmallRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    pub fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            denominator != 0 && numerator <= denominator,
            "gen_ratio({numerator}, {denominator}) is not a probability"
        );
        self.gen_range(0..u64::from(denominator)) < u64::from(numerator)
    }

    /// Samples a uniform `u64` strictly below `bound` (Lemire's widening
    /// multiply; the bias for simulator-scale bounds is below 2^-64).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Integer ranges [`SmallRng::gen_range`] can sample from, generic over
/// the output type (as in `rand`) so integer literals infer correctly.
pub trait UniformRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_uniform_range!(u8, u16, u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from Vigna's splitmix64.c.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        assert_eq!(first, 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20u32);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(0..1u64);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 must occur");
    }

    #[test]
    fn gen_ratio_frequency_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((23_000..27_000).contains(&hits), "1/4 ratio gave {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(5..5u32);
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn bad_ratio_panics() {
        SmallRng::seed_from_u64(0).gen_ratio(5, 4);
    }
}
