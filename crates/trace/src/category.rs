//! Miss classes and the paper's Table-2 code-module taxonomy.
//!
//! Two orthogonal classifications apply to every read miss:
//!
//! - [`MissClass`]: the "4 C's"-style cause of the miss (paper §4.1), and for
//!   intra-chip misses the responder-based [`IntraChipClass`];
//! - [`MissCategory`]: the application/OS code module the missing function
//!   belongs to (paper Table 2), used for the §5 origin analysis.

use std::fmt;

/// "4 C's"-style classification of an off-chip read miss (paper §4.1).
///
/// Classification priority follows the paper: a block never accessed before
/// is `Compulsory`; else a block written by DMA or a bulk copyout store since
/// this CPU last read it is `IoCoherence`; else a block written by another
/// processor since this CPU last read it is `Coherence`; everything else is
/// `Replacement` (capacity or conflict; with 16-way L2s, mostly capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MissClass {
    /// First access ever to the cache block.
    Compulsory,
    /// Block was invalidated/updated by DMA or an OS-to-user bulk copy.
    IoCoherence,
    /// Block was written by another processor since last read here.
    Coherence,
    /// Block was displaced from the local hierarchy (capacity/conflict).
    Replacement,
}

impl MissClass {
    /// All classes, in the order the paper's Figure 1 (left) stacks them.
    pub const ALL: [MissClass; 4] = [
        MissClass::Compulsory,
        MissClass::IoCoherence,
        MissClass::Replacement,
        MissClass::Coherence,
    ];

    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            MissClass::Compulsory => "Compulsory",
            MissClass::IoCoherence => "I/O Coherence",
            MissClass::Coherence => "Coherence",
            MissClass::Replacement => "Replacement",
        }
    }
}

impl fmt::Display for MissClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Classification of an intra-chip (L1) miss in the single-chip system by
/// cause and responder (paper Figure 1, right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IntraChipClass {
    /// Coherence miss satisfied by a peer L1 holding the block dirty.
    CoherencePeerL1,
    /// Coherence miss satisfied by the shared L2.
    CoherenceL2,
    /// L1 replacement miss that hit in the shared L2.
    ReplacementL2,
    /// L1 miss that also missed in the L2 and went off chip.
    OffChip,
}

impl IntraChipClass {
    /// All classes, in the order the paper's Figure 1 (right) stacks them.
    pub const ALL: [IntraChipClass; 4] = [
        IntraChipClass::OffChip,
        IntraChipClass::ReplacementL2,
        IntraChipClass::CoherenceL2,
        IntraChipClass::CoherencePeerL1,
    ];

    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            IntraChipClass::CoherencePeerL1 => "Coherence:Peer-L1",
            IntraChipClass::CoherenceL2 => "Coherence:L2",
            IntraChipClass::ReplacementL2 => "Replacement:L2",
            IntraChipClass::OffChip => "Off-chip",
        }
    }
}

impl fmt::Display for IntraChipClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The three commercial application classes studied by the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AppClass {
    /// SPECweb99 on Apache or Zeus.
    Web,
    /// TPC-C on DB2.
    Oltp,
    /// TPC-H queries on DB2.
    Dss,
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AppClass::Web => "Web",
            AppClass::Oltp => "OLTP",
            AppClass::Dss => "DSS",
        })
    }
}

/// The paper's Table-2 code-module categories.
///
/// Cross-application categories apply to every workload; the web- and
/// DB2-specific categories apply only to the corresponding [`AppClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MissCategory {
    /// Functions that could not be tied to any module.
    Uncategorized,
    // --- Cross-application categories -----------------------------------
    /// Kernel and user memory copy functions (`memcpy`, `bcopy`,
    /// `__align_cpy_1`, `default_copyout`).
    BulkMemoryCopy,
    /// Kernel functionality invoked within system call interfaces
    /// (`poll`, `open`, `read`, `write`, `stat`).
    SystemCall,
    /// Kernel thread prioritization and dispatching (`disp_getwork`,
    /// `disp_getbest`, `dispdeq`, `disp_ratify`).
    KernelScheduler,
    /// Trap-vector-entered functions: MMU miss handlers and register-window
    /// management.
    KernelMmuTrap,
    /// Solaris mutex and condition-variable primitives, including
    /// sleep-queue management.
    KernelSynchronization,
    /// Remaining definitively-kernel functionality (memory/resource
    /// management and similar).
    KernelOther,
    // --- Web-specific categories -----------------------------------------
    /// Solaris STREAMS stream-based I/O implementation.
    KernelStreams,
    /// Functions that divide socket writes into IP packets.
    KernelIpPacket,
    /// Activity within the Apache or Zeus server binaries themselves.
    WebServerWorker,
    /// `Perl_sv_gets`: parsing requests passed from the web server to perl.
    CgiPerlInput,
    /// The `Perl_pp_*` primitive-operation functions of the perl engine.
    CgiPerlEngine,
    /// Other perl functionality.
    CgiPerlOther,
    // --- DB2-specific categories -----------------------------------------
    /// Block-device (disk) driver functions.
    KernelBlockDevice,
    /// DB2 `sqli`/`sqld`/`sqlpg`: index, row, and buffer-pool page accesses.
    Db2IndexPageTuple,
    /// DB2 `sqlrr`/`sqlra`: per-transaction/request context (cursors etc.).
    Db2RequestControl,
    /// DB2 client/server interprocess communication.
    Db2Ipc,
    /// DB2 `sqlri`: the parsed-execution-plan runtime interpreter.
    Db2RuntimeInterpreter,
    /// Other DB2 functionality.
    Db2Other,
}

impl MissCategory {
    /// Cross-application categories, in Table 2 order.
    pub const CROSS_APP: [MissCategory; 6] = [
        MissCategory::BulkMemoryCopy,
        MissCategory::SystemCall,
        MissCategory::KernelScheduler,
        MissCategory::KernelMmuTrap,
        MissCategory::KernelSynchronization,
        MissCategory::KernelOther,
    ];

    /// Web-specific categories, in Table 2 order.
    pub const WEB: [MissCategory; 6] = [
        MissCategory::KernelStreams,
        MissCategory::KernelIpPacket,
        MissCategory::WebServerWorker,
        MissCategory::CgiPerlInput,
        MissCategory::CgiPerlEngine,
        MissCategory::CgiPerlOther,
    ];

    /// DB2-specific categories, in Table 2 order.
    pub const DB2: [MissCategory; 6] = [
        MissCategory::KernelBlockDevice,
        MissCategory::Db2IndexPageTuple,
        MissCategory::Db2RequestControl,
        MissCategory::Db2Ipc,
        MissCategory::Db2RuntimeInterpreter,
        MissCategory::Db2Other,
    ];

    /// Every category, `Uncategorized` first, then Table 2 order.
    pub fn all() -> Vec<MissCategory> {
        let mut v = vec![MissCategory::Uncategorized];
        v.extend(Self::CROSS_APP);
        v.extend(Self::WEB);
        v.extend(Self::DB2);
        v
    }

    /// The categories reported for a given application class
    /// (`Uncategorized` + cross-application + class-specific), matching the
    /// row sets of the paper's Tables 3-5.
    pub fn for_app(app: AppClass) -> Vec<MissCategory> {
        let mut v = vec![MissCategory::Uncategorized];
        v.extend(Self::CROSS_APP);
        match app {
            AppClass::Web => v.extend(Self::WEB),
            AppClass::Oltp | AppClass::Dss => v.extend(Self::DB2),
        }
        v
    }

    /// Returns `true` if this category appears in the given application
    /// class's origin table.
    pub fn applies_to(self, app: AppClass) -> bool {
        Self::for_app(app).contains(&self)
    }

    /// Row label as printed in Tables 3-5.
    pub fn label(self) -> &'static str {
        match self {
            MissCategory::Uncategorized => "Uncategorized / Unknown",
            MissCategory::BulkMemoryCopy => "Bulk memory copies",
            MissCategory::SystemCall => "System call implementation",
            MissCategory::KernelScheduler => "Kernel task scheduler",
            MissCategory::KernelMmuTrap => "Kernel MMU & trap handlers",
            MissCategory::KernelSynchronization => "Kernel synchronization primitives",
            MissCategory::KernelOther => "Kernel - other activity",
            MissCategory::KernelStreams => "Kernel STREAMS subsystem",
            MissCategory::KernelIpPacket => "Kernel IP packet assembly",
            MissCategory::WebServerWorker => "Web server worker thread pool",
            MissCategory::CgiPerlInput => "CGI - perl input processing",
            MissCategory::CgiPerlEngine => "CGI - perl execution engine",
            MissCategory::CgiPerlOther => "CGI - perl other activity",
            MissCategory::KernelBlockDevice => "Kernel block device driver",
            MissCategory::Db2IndexPageTuple => "DB2 index, page & tuple accesses",
            MissCategory::Db2RequestControl => "DB2 SQL request control",
            MissCategory::Db2Ipc => "DB2 interprocess communication",
            MissCategory::Db2RuntimeInterpreter => "DB2 SQL runtime interpreter",
            MissCategory::Db2Other => "DB2 - other activity",
        }
    }

    /// The paper's Table-2 description of the category.
    pub fn description(self) -> &'static str {
        match self {
            MissCategory::Uncategorized => "Functions that could not be tied to a known module.",
            MissCategory::BulkMemoryCopy => {
                "Kernel and user memory copy functions such as memcpy, bcopy, \
                 __align_cpy_1, and default_copyout (which copies DMA'd I/O \
                 results from kernel to user buffers)."
            }
            MissCategory::SystemCall => {
                "Kernel functionality invoked on behalf of user threads within \
                 system call interfaces; dominated by I/O calls: poll, open, \
                 read, write, stat."
            }
            MissCategory::KernelScheduler => {
                "Kernel thread prioritization and dispatching: per-processor \
                 dispatch queues, disp_getwork/disp_getbest scanning, dispdeq, \
                 disp_ratify."
            }
            MissCategory::KernelMmuTrap => {
                "Trap-vector-entered functions other than system calls: \
                 instruction/data MMU miss handlers filling software TLBs from \
                 page tables, and register-window spill/fill traps."
            }
            MissCategory::KernelSynchronization => {
                "Solaris mutex and condition-variable primitives, including \
                 the linked lists of threads waiting on a lock or condvar."
            }
            MissCategory::KernelOther => {
                "Remaining definitively-kernel functionality: various forms of \
                 kernel memory and resource management."
            }
            MissCategory::KernelStreams => {
                "Solaris STREAMS stream-based I/O: moving pointers to strings \
                 among thread-safe message queues."
            }
            MissCategory::KernelIpPacket => {
                "Functions dividing data written to sockets into IP packets."
            }
            MissCategory::WebServerWorker => {
                "All activity within the Apache or Zeus server binaries; a \
                 surprisingly small share of overall SPECweb activity."
            }
            MissCategory::CgiPerlInput => {
                "Perl_sv_gets, parsing requests passed from the web server to \
                 perl; the most repetitive single function observed."
            }
            MissCategory::CgiPerlEngine => {
                "The Perl_pp_* primitive operations making up perl's control \
                 flow graph (Perl_pp_const, Perl_pp_print, ...)."
            }
            MissCategory::CgiPerlOther => "Other perl functionality not readily identifiable.",
            MissCategory::KernelBlockDevice => {
                "Functions managing I/O to block devices such as disks."
            }
            MissCategory::Db2IndexPageTuple => {
                "DB2 sqli/sqld/sqlpg modules: index manipulation and \
                 traversal, row fetch/update, buffer-pool page operations."
            }
            MissCategory::Db2RequestControl => {
                "DB2 sqlrr/sqlra modules: context for a transaction/request, \
                 e.g. cursor state."
            }
            MissCategory::Db2Ipc => {
                "Functions passing data between DB2 server and client \
                 processes."
            }
            MissCategory::Db2RuntimeInterpreter => {
                "DB2 sqlri module: primitive operations of the parsed \
                 execution plan, analogous to perl's Perl_pp_* functions."
            }
            MissCategory::Db2Other => {
                "Other DB2 functionality with small contribution or opaque \
                 names."
            }
        }
    }
}

impl fmt::Display for MissCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_group_once() {
        let all = MissCategory::all();
        assert_eq!(all.len(), 1 + 6 + 6 + 6);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "no duplicate categories");
    }

    #[test]
    fn app_rows_match_paper_tables() {
        // Tables 3-5 each have Uncategorized + 6 cross-app + 6 specific rows
        // (Table 5 prints fewer rows only because some are ~0 in DSS).
        assert_eq!(MissCategory::for_app(AppClass::Web).len(), 13);
        assert_eq!(MissCategory::for_app(AppClass::Oltp).len(), 13);
        assert_eq!(MissCategory::for_app(AppClass::Dss).len(), 13);
    }

    #[test]
    fn applicability() {
        assert!(MissCategory::KernelStreams.applies_to(AppClass::Web));
        assert!(!MissCategory::KernelStreams.applies_to(AppClass::Oltp));
        assert!(MissCategory::Db2IndexPageTuple.applies_to(AppClass::Dss));
        assert!(!MissCategory::Db2IndexPageTuple.applies_to(AppClass::Web));
        assert!(MissCategory::BulkMemoryCopy.applies_to(AppClass::Web));
        assert!(MissCategory::BulkMemoryCopy.applies_to(AppClass::Dss));
    }

    #[test]
    fn labels_and_descriptions_nonempty() {
        for c in MissCategory::all() {
            assert!(!c.label().is_empty());
            assert!(!c.description().is_empty());
        }
    }

    #[test]
    fn miss_class_labels() {
        assert_eq!(MissClass::Coherence.to_string(), "Coherence");
        assert_eq!(
            IntraChipClass::CoherencePeerL1.to_string(),
            "Coherence:Peer-L1"
        );
        assert_eq!(MissClass::ALL.len(), 4);
        assert_eq!(IntraChipClass::ALL.len(), 4);
    }
}
