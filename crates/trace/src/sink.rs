//! Streaming access consumption.
//!
//! Workload generators produce tens of millions of accesses; rather than
//! materializing them, generators push each access into an [`AccessSink`]
//! (a memory-system simulator, a collector, or a tee).

use crate::access::MemoryAccess;

/// A consumer of a memory-access stream.
pub trait AccessSink {
    /// Consumes one access.
    fn access(&mut self, access: &MemoryAccess);
}

impl AccessSink for Vec<MemoryAccess> {
    fn access(&mut self, access: &MemoryAccess) {
        self.push(*access);
    }
}

impl<S: AccessSink + ?Sized> AccessSink for &mut S {
    fn access(&mut self, access: &MemoryAccess) {
        (**self).access(access);
    }
}

/// Duplicates a stream into two sinks (e.g. feeding the multi-chip and
/// single-chip simulators from one generator run).
#[derive(Debug)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: AccessSink, B: AccessSink> AccessSink for Tee<A, B> {
    fn access(&mut self, access: &MemoryAccess) {
        self.0.access(access);
        self.1.access(access);
    }
}

/// A sink that counts accesses and otherwise discards them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Number of accesses consumed.
    pub count: u64,
}

impl AccessSink for CountingSink {
    fn access(&mut self, _access: &MemoryAccess) {
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn acc(addr: u64) -> MemoryAccess {
        MemoryAccess::read(Address::new(addr), CpuId::new(0), FunctionId::new(0))
    }

    #[test]
    fn vec_collects() {
        let mut v: Vec<MemoryAccess> = Vec::new();
        v.access(&acc(64));
        v.access(&acc(128));
        assert_eq!(v.len(), 2);
        assert_eq!(v[1].addr, Address::new(128));
    }

    #[test]
    fn tee_duplicates() {
        let mut tee = Tee(Vec::new(), CountingSink::default());
        tee.access(&acc(0));
        tee.access(&acc(64));
        assert_eq!(tee.0.len(), 2);
        assert_eq!(tee.1.count, 2);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut counter = CountingSink::default();
        {
            let r: &mut CountingSink = &mut counter;
            r.access(&acc(0));
        }
        assert_eq!(counter.count, 1);
    }
}
