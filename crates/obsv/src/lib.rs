//! Structured observability for the tempstream workspace.
//!
//! The paper's evaluation is entirely quantitative — miss-class
//! breakdowns, stream fractions, length CDFs — so every layer of the
//! reproduction needs a uniform way to export numbers that a machine
//! can track across runs. This crate provides that layer without any
//! external dependency:
//!
//! - [`Registry`]: named [`Counter`]s, [`Gauge`]s, log2-scaled
//!   [`Histogram`]s, and [`SpanStat`] timers. Handles are `Arc`-backed
//!   atomics, so recording on a hot path is lock-free; only
//!   registration takes a mutex. A process-wide registry is available
//!   via [`global()`]; components that need scoped metrics (the
//!   pipeline executor) construct their own.
//! - [`Json`]: a stable in-tree JSON value with a serializer (and a
//!   small parser for tests and CI gates). `/`-separated metric names
//!   nest into an object tree in [`Registry::snapshot`].
//! - [`frac`] / [`fracf`]: the workspace's shared NaN-safe division
//!   helpers. Every report-facing fraction routes through these so no
//!   analysis can emit `NaN` or `inf`, even on an empty trace.

pub mod json;
pub mod registry;

pub use json::{Json, ParseError};
pub use registry::{global, Counter, Gauge, Histogram, Registry, SpanStat};

/// `num / den` as `f64`, returning `0.0` when `den == 0`.
///
/// This is the single guard for every "fraction of misses" style
/// statistic in the workspace: an empty trace yields `0.0`, never
/// `NaN`.
pub fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// `num / den` for floats, returning `0.0` when the quotient would not
/// be finite (zero, non-finite, or subnormal-overflow denominators).
pub fn fracf(num: f64, den: f64) -> f64 {
    let q = num / den;
    if q.is_finite() {
        q
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frac_guards_zero_denominator() {
        assert_eq!(frac(0, 0), 0.0);
        assert_eq!(frac(5, 0), 0.0);
        assert_eq!(frac(1, 4), 0.25);
        assert_eq!(frac(3, 3), 1.0);
    }

    #[test]
    fn fracf_guards_non_finite_quotients() {
        assert_eq!(fracf(1.0, 0.0), 0.0);
        assert_eq!(fracf(0.0, 0.0), 0.0);
        assert_eq!(fracf(f64::INFINITY, 2.0), 0.0);
        assert_eq!(fracf(1.0, f64::NAN), 0.0);
        assert_eq!(fracf(1.0, 2.0), 0.5);
        assert_eq!(fracf(-3.0, 2.0), -1.5);
    }

    #[test]
    fn frac_matches_unguarded_division_when_nonzero() {
        // The bugfix sweep replaces `x as f64 / total.max(1) as f64`
        // with `frac(x, total)`; for total > 0 the two must agree
        // bit-for-bit so report text stays byte-identical.
        for (x, total) in [(0u64, 1u64), (1, 3), (7, 7), (123_456, 999_999)] {
            assert_eq!(frac(x, total), x as f64 / total as f64);
        }
    }
}
