//! A stable, dependency-free JSON value type with a serializer and a
//! minimal parser.
//!
//! The workspace builds fully offline, so the metrics layer cannot pull
//! `serde_json`. This module provides the small slice it needs:
//!
//! - [`Json`] — an ordered value tree. Objects preserve insertion order,
//!   so a snapshot built from sorted inputs serializes byte-stably.
//! - [`Json::render`] — compact serialization. Non-finite floats have no
//!   JSON encoding and are rendered as `null`; every report-facing
//!   fraction is already guarded by [`crate::frac`], so a `null` in an
//!   emitted file indicates a bug upstream rather than a crash here.
//! - [`parse`] — a recursive-descent parser, used by round-trip tests
//!   and the CI metrics gate.

use std::fmt;

/// An ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point number; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Sets `key` on an object, replacing an existing entry in place.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
    }

    /// The entry for `key`, if `self` is an object that has one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `/`-separated key path through nested objects
    /// (`snapshot.get_path("counters/serve/frames/dropped")`), mirroring
    /// the registry's metric-name nesting.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        path.split('/').try_fold(self, Json::get)
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            Json::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(n) => Some(n as f64),
            Json::Int(n) => Some(n as f64),
            Json::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses `input`; convenience alias for [`parse`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] locating the first malformed byte.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        parse(input)
    }

    /// Compact serialization.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Int(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // Rust's shortest-roundtrip Display is stable and a
                    // valid JSON number (`2` for 2.0, `0.1` for 0.1).
                    let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was expected or found.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first violation.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for metric
                            // names; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|r| r.chars().next())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_path_walks_nested_objects() {
        let parsed = Json::parse(r#"{"counters":{"serve":{"frames":{"dropped":0}}}}"#).unwrap();
        assert_eq!(
            parsed
                .get_path("counters/serve/frames/dropped")
                .and_then(Json::as_u64),
            Some(0)
        );
        assert!(parsed.get_path("counters/serve/missing").is_none());
        assert!(parsed
            .get_path("counters/serve/frames/dropped/deeper")
            .is_none());
        assert_eq!(parsed.get_path("counters"), parsed.get("counters"));
    }

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        assert_eq!(Json::Float(2.0).render(), "2");
        assert_eq!(Json::Str("a\"b".into()).render(), "\"a\\\"b\"");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
        assert_eq!(Json::Float(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut o = Json::obj();
        o.set("b", Json::UInt(1));
        o.set("a", Json::UInt(2));
        o.set("b", Json::UInt(3));
        assert_eq!(o.render(), "{\"b\":3,\"a\":2}");
        assert_eq!(o.get("a"), Some(&Json::UInt(2)));
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn roundtrip() {
        let mut inner = Json::obj();
        inner.set("count", Json::UInt(3));
        inner.set("ratio", Json::Float(0.25));
        let mut doc = Json::obj();
        doc.set("name", Json::Str("emit/simulate".into()));
        doc.set("stats", inner);
        doc.set("tags", Json::Arr(vec![Json::Bool(false), Json::Null]));
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\\n\" : [ 1 , -2 , 3.5 ] } ").unwrap();
        assert_eq!(
            v.get("a\n"),
            Some(&Json::Arr(vec![
                Json::UInt(1),
                Json::Int(-2),
                Json::Float(3.5)
            ]))
        );
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn number_widths() {
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(
            parse("-9007199254740993").unwrap(),
            Json::Int(-9007199254740993)
        );
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn as_accessors() {
        assert_eq!(Json::UInt(5).as_u64(), Some(5));
        assert_eq!(Json::Int(5).as_u64(), Some(5));
        assert_eq!(Json::Int(-5).as_u64(), None);
        assert_eq!(Json::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Json::Str("x".into()).as_f64(), None);
    }
}
