//! The metric registry: named counters, gauges, log-scaled histograms,
//! and span timers.
//!
//! Handles returned by the registry are cheap `Arc`-backed wrappers
//! around atomics, so the hot path (a counter bump inside a simulator
//! loop or a span close on the job-completion path) never takes a lock.
//! The registry's own maps are behind a `Mutex`, but registration is
//! expected once per metric name, not per event.
//!
//! Metric names are `/`-separated paths (`sim/tpcc/multi_chip/invalidations`);
//! [`Registry::snapshot`] nests them into a JSON object tree. Keys are
//! kept in a `BTreeMap`, so snapshots are deterministically ordered.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value (or high-water-mark) gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the gauge value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is higher than the current value.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: value 0, then one bucket per power of
/// two up to `u64::MAX` (`ilog2` ∈ 0..=63).
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log2-scaled histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `i > 0` holds samples in
/// `[2^(i-1), 2^i)`. Good enough resolution for length CDFs and
/// reuse-distance PDFs at a fixed 65-slot footprint.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = if v == 0 { 0 } else { v.ilog2() as usize + 1 };
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.min.fetch_min(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        crate::frac(self.sum(), self.count())
    }

    fn snapshot(&self) -> Json {
        let count = self.count();
        let mut o = Json::obj();
        o.set("count", Json::UInt(count));
        o.set("sum", Json::UInt(self.sum()));
        if count > 0 {
            o.set("min", Json::UInt(self.0.min.load(Ordering::Relaxed)));
            o.set("max", Json::UInt(self.0.max.load(Ordering::Relaxed)));
        }
        o.set("mean", Json::Float(self.mean()));
        let mut buckets = Json::obj();
        for (i, b) in self.0.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                // Key each non-empty bucket by its lower bound.
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                buckets.set(&lo.to_string(), Json::UInt(n));
            }
        }
        o.set("buckets", buckets);
        o
    }
}

#[derive(Debug, Default)]
struct SpanInner {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

/// Aggregate wall-time for a named span (a stage, a phase, a loop).
#[derive(Debug, Clone, Default)]
pub struct SpanStat(Arc<SpanInner>);

impl SpanStat {
    /// Folds one finished span of `elapsed` into the aggregate.
    pub fn record(&self, elapsed: Duration) {
        let nanos = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.0.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Runs `f`, recording its wall time as one span.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Number of recorded spans.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Total recorded wall time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.0.total_nanos.load(Ordering::Relaxed))
    }

    /// Longest recorded span.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.0.max_nanos.load(Ordering::Relaxed))
    }

    fn snapshot(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", Json::UInt(self.count()));
        o.set(
            "total_nanos",
            Json::UInt(self.0.total_nanos.load(Ordering::Relaxed)),
        );
        o.set(
            "max_nanos",
            Json::UInt(self.0.max_nanos.load(Ordering::Relaxed)),
        );
        o
    }
}

/// A named collection of metrics.
///
/// Use [`global()`] for process-wide metrics or construct a private
/// registry (as the pipeline executor does) to scope metrics to a run.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("obsv registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("obsv registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("obsv registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The span aggregate registered under `name`, creating it on first
    /// use.
    pub fn span(&self, name: &str) -> SpanStat {
        let mut map = self.spans.lock().expect("obsv registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Runs `f` inside the span named `name`.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        self.span(name).time(f)
    }

    /// Removes every metric. Used by tests and by `reproduce` between
    /// commands so each export reflects one command only.
    pub fn clear(&self) {
        self.counters
            .lock()
            .expect("obsv registry poisoned")
            .clear();
        self.gauges.lock().expect("obsv registry poisoned").clear();
        self.histograms
            .lock()
            .expect("obsv registry poisoned")
            .clear();
        self.spans.lock().expect("obsv registry poisoned").clear();
    }

    /// Snapshots every metric into a JSON tree.
    ///
    /// The top level has one key per metric kind (`counters`, `gauges`,
    /// `histograms`, `spans`); under each, `/`-separated metric names
    /// become nested objects. If a name is both a leaf and a prefix of
    /// other names (`a` and `a/b`), the leaf value appears under a
    /// `"self"` key inside the subtree.
    pub fn snapshot(&self) -> Json {
        let mut root = Json::obj();
        root.set(
            "counters",
            nest(
                self.counters
                    .lock()
                    .expect("obsv registry poisoned")
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::UInt(v.get()))),
            ),
        );
        root.set(
            "gauges",
            nest(
                self.gauges
                    .lock()
                    .expect("obsv registry poisoned")
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::UInt(v.get()))),
            ),
        );
        root.set(
            "histograms",
            nest(
                self.histograms
                    .lock()
                    .expect("obsv registry poisoned")
                    .iter()
                    .map(|(k, v)| (k.clone(), v.snapshot())),
            ),
        );
        root.set(
            "spans",
            nest(
                self.spans
                    .lock()
                    .expect("obsv registry poisoned")
                    .iter()
                    .map(|(k, v)| (k.clone(), v.snapshot())),
            ),
        );
        root
    }
}

/// Nests `/`-separated names into an object tree. Input must be sorted
/// by name (it comes out of a `BTreeMap`), which keeps output order
/// deterministic.
fn nest(entries: impl Iterator<Item = (String, Json)>) -> Json {
    let mut root = Json::obj();
    for (name, value) in entries {
        insert_path(&mut root, &name, value);
    }
    root
}

fn insert_path(node: &mut Json, path: &str, value: Json) {
    match path.split_once('/') {
        None => {
            // Leaf. If a subtree already grew here (sorted order means
            // "a" sorts before "a/b", so normally the leaf lands
            // first), tuck the leaf under "self".
            if let Some(existing) = node.get(path) {
                if matches!(existing, Json::Obj(_)) && !matches!(value, Json::Obj(_)) {
                    let Json::Obj(entries) = node else {
                        unreachable!()
                    };
                    let sub = entries
                        .iter_mut()
                        .find(|(k, _)| k == path)
                        .map(|(_, v)| v)
                        .expect("entry just found");
                    sub.set("self", value);
                    return;
                }
            }
            node.set(path, value);
        }
        Some((head, rest)) => {
            let Json::Obj(entries) = node else {
                unreachable!()
            };
            let sub = if let Some(i) = entries.iter().position(|(k, _)| k == head) {
                // A leaf already named `head`: demote it to "self".
                if !matches!(entries[i].1, Json::Obj(_)) {
                    let leaf = std::mem::replace(&mut entries[i].1, Json::obj());
                    entries[i].1.set("self", leaf);
                }
                &mut entries[i].1
            } else {
                entries.push((head.to_string(), Json::obj()));
                &mut entries.last_mut().expect("just pushed").1
            };
            insert_path(sub, rest, value);
        }
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 3);
        assert_eq!(r.counter("b").get(), 0);
    }

    #[test]
    fn gauges_set_and_max() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(r.gauge("depth").get(), 9);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert!((h.mean() - 206.0).abs() < 1e-9);
        let snap = h.snapshot();
        let buckets = snap.get("buckets").unwrap();
        assert_eq!(buckets.get("0").unwrap().as_u64(), Some(1)); // the 0
        assert_eq!(buckets.get("1").unwrap().as_u64(), Some(1)); // [1,2)
        assert_eq!(buckets.get("2").unwrap().as_u64(), Some(2)); // [2,4)
        assert_eq!(buckets.get("1024").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("min").unwrap().as_u64(), Some(0));
        assert_eq!(snap.get("max").unwrap().as_u64(), Some(1024));
    }

    #[test]
    fn empty_histogram_has_finite_mean() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        let snap = h.snapshot();
        assert_eq!(snap.get("count").unwrap().as_u64(), Some(0));
        assert!(snap.get("min").is_none());
    }

    #[test]
    fn spans_time_closures() {
        let r = Registry::new();
        let out = r.time("work", || 7);
        assert_eq!(out, 7);
        let s = r.span("work");
        assert_eq!(s.count(), 1);
        assert!(s.total() >= Duration::ZERO);
        assert!(s.max() <= s.total() || s.count() > 1);
    }

    #[test]
    fn snapshot_nests_paths() {
        let r = Registry::new();
        r.counter("sim/tpcc/invalidations").add(4);
        r.counter("sim/tpcc/writebacks").add(2);
        r.counter("sim/web/invalidations").add(1);
        let snap = r.snapshot();
        let sim = snap.get("counters").unwrap().get("sim").unwrap();
        assert_eq!(
            sim.get("tpcc")
                .unwrap()
                .get("invalidations")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        assert_eq!(
            sim.get("web")
                .unwrap()
                .get("invalidations")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn snapshot_handles_leaf_and_subtree_conflicts() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.counter("a/b").add(2);
        let snap = r.snapshot();
        let a = snap.get("counters").unwrap().get("a").unwrap();
        assert_eq!(a.get("self").unwrap().as_u64(), Some(1));
        assert_eq!(a.get("b").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        r.gauge("m").set(1);
        let first = r.snapshot().render();
        let second = r.snapshot().render();
        assert_eq!(first, second);
        assert!(first.find("\"a\"").unwrap() < first.find("\"z\"").unwrap());
    }

    #[test]
    fn clear_empties_everything() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(1);
        r.histogram("h").record(1);
        r.span("s").record(Duration::from_nanos(1));
        r.clear();
        let snap = r.snapshot();
        assert_eq!(snap.get("counters").unwrap(), &Json::obj());
        assert_eq!(snap.get("spans").unwrap(), &Json::obj());
    }

    #[test]
    fn global_registry_is_shared() {
        let g = global();
        g.counter("obsv_test/global").add(5);
        assert_eq!(global().counter("obsv_test/global").get(), 5);
        g.clear();
    }
}
