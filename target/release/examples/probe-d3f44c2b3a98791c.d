/root/repo/target/release/examples/probe-d3f44c2b3a98791c.d: crates/runtime/examples/probe.rs

/root/repo/target/release/examples/probe-d3f44c2b3a98791c: crates/runtime/examples/probe.rs

crates/runtime/examples/probe.rs:
