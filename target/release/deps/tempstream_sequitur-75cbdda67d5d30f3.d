/root/repo/target/release/deps/tempstream_sequitur-75cbdda67d5d30f3.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/release/deps/tempstream_sequitur-75cbdda67d5d30f3: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
