/root/repo/target/release/deps/reproduce-5f09634a749cfb45.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-5f09634a749cfb45: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
