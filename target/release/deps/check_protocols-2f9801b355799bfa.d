/root/repo/target/release/deps/check_protocols-2f9801b355799bfa.d: crates/checker/src/main.rs

/root/repo/target/release/deps/check_protocols-2f9801b355799bfa: crates/checker/src/main.rs

crates/checker/src/main.rs:
