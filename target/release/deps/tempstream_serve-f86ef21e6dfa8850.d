/root/repo/target/release/deps/tempstream_serve-f86ef21e6dfa8850.d: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

/root/repo/target/release/deps/libtempstream_serve-f86ef21e6dfa8850.rlib: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

/root/repo/target/release/deps/libtempstream_serve-f86ef21e6dfa8850.rmeta: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

crates/serve/src/lib.rs:
crates/serve/src/offline.rs:
crates/serve/src/queue.rs:
crates/serve/src/server.rs:
crates/serve/src/shard.rs:
crates/serve/src/wire.rs:
