/root/repo/target/release/deps/fig4_length_reuse-a54e9cd105320388.d: crates/bench/benches/fig4_length_reuse.rs

/root/repo/target/release/deps/fig4_length_reuse-a54e9cd105320388: crates/bench/benches/fig4_length_reuse.rs

crates/bench/benches/fig4_length_reuse.rs:
