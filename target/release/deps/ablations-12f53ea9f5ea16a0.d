/root/repo/target/release/deps/ablations-12f53ea9f5ea16a0.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-12f53ea9f5ea16a0: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
