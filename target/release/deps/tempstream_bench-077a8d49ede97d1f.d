/root/repo/target/release/deps/tempstream_bench-077a8d49ede97d1f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/tempstream_bench-077a8d49ede97d1f: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
