/root/repo/target/release/deps/check_protocols-783f769f2525e3a8.d: crates/checker/src/main.rs

/root/repo/target/release/deps/check_protocols-783f769f2525e3a8: crates/checker/src/main.rs

crates/checker/src/main.rs:
