/root/repo/target/release/deps/prefetch_eval-bcf9ece1ca575e78.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/release/deps/prefetch_eval-bcf9ece1ca575e78: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
