/root/repo/target/release/deps/tempstream_coherence-e5b33e34c4ef7c44.d: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/release/deps/libtempstream_coherence-e5b33e34c4ef7c44.rlib: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/release/deps/libtempstream_coherence-e5b33e34c4ef7c44.rmeta: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

crates/coherence/src/lib.rs:
crates/coherence/src/events.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
