/root/repo/target/release/deps/tempstream_fxhash-d110e87ad74fd122.d: crates/fxhash/src/lib.rs

/root/repo/target/release/deps/libtempstream_fxhash-d110e87ad74fd122.rlib: crates/fxhash/src/lib.rs

/root/repo/target/release/deps/libtempstream_fxhash-d110e87ad74fd122.rmeta: crates/fxhash/src/lib.rs

crates/fxhash/src/lib.rs:
