/root/repo/target/release/deps/tables_origins-d1c46bc81d262ca3.d: crates/bench/benches/tables_origins.rs

/root/repo/target/release/deps/tables_origins-d1c46bc81d262ca3: crates/bench/benches/tables_origins.rs

crates/bench/benches/tables_origins.rs:
