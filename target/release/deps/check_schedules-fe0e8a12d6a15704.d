/root/repo/target/release/deps/check_schedules-fe0e8a12d6a15704.d: crates/schedcheck/src/main.rs

/root/repo/target/release/deps/check_schedules-fe0e8a12d6a15704: crates/schedcheck/src/main.rs

crates/schedcheck/src/main.rs:
