/root/repo/target/release/deps/prefetch_eval-d7b2cd3ab811014b.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/release/deps/prefetch_eval-d7b2cd3ab811014b: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
