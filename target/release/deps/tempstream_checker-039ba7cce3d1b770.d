/root/repo/target/release/deps/tempstream_checker-039ba7cce3d1b770.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/lint.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/release/deps/libtempstream_checker-039ba7cce3d1b770.rlib: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/lint.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/release/deps/libtempstream_checker-039ba7cce3d1b770.rmeta: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/lint.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/lint.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
