/root/repo/target/release/deps/reproduce-10c891bedd8f23ed.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-10c891bedd8f23ed: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
