/root/repo/target/release/deps/reproduce-6d911c6246fd41cb.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-6d911c6246fd41cb: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
