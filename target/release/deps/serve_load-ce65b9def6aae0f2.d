/root/repo/target/release/deps/serve_load-ce65b9def6aae0f2.d: crates/serve/src/bin/serve_load.rs

/root/repo/target/release/deps/serve_load-ce65b9def6aae0f2: crates/serve/src/bin/serve_load.rs

crates/serve/src/bin/serve_load.rs:
