/root/repo/target/release/deps/runtime_scaling-302b5a5970bb3b38.d: crates/bench/benches/runtime_scaling.rs

/root/repo/target/release/deps/runtime_scaling-302b5a5970bb3b38: crates/bench/benches/runtime_scaling.rs

crates/bench/benches/runtime_scaling.rs:
