/root/repo/target/release/deps/fig2_stream_fraction-f772a66315330c4b.d: crates/bench/benches/fig2_stream_fraction.rs

/root/repo/target/release/deps/fig2_stream_fraction-f772a66315330c4b: crates/bench/benches/fig2_stream_fraction.rs

crates/bench/benches/fig2_stream_fraction.rs:
