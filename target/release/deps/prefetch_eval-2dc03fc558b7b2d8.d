/root/repo/target/release/deps/prefetch_eval-2dc03fc558b7b2d8.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/release/deps/prefetch_eval-2dc03fc558b7b2d8: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
