/root/repo/target/release/deps/lint_sources-500e15d406b21027.d: crates/checker/src/bin/lint_sources.rs

/root/repo/target/release/deps/lint_sources-500e15d406b21027: crates/checker/src/bin/lint_sources.rs

crates/checker/src/bin/lint_sources.rs:
