/root/repo/target/release/deps/tempstream_runtime-87328ae2c8677780.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs crates/runtime/src/sync/mod.rs crates/runtime/src/sync/sched.rs crates/runtime/src/sync/atomic.rs crates/runtime/src/sync/thread.rs

/root/repo/target/release/deps/libtempstream_runtime-87328ae2c8677780.rlib: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs crates/runtime/src/sync/mod.rs crates/runtime/src/sync/sched.rs crates/runtime/src/sync/atomic.rs crates/runtime/src/sync/thread.rs

/root/repo/target/release/deps/libtempstream_runtime-87328ae2c8677780.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs crates/runtime/src/sync/mod.rs crates/runtime/src/sync/sched.rs crates/runtime/src/sync/atomic.rs crates/runtime/src/sync/thread.rs

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/deque.rs:
crates/runtime/src/metrics.rs:
crates/runtime/src/pipeline.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/spill.rs:
crates/runtime/src/sync/mod.rs:
crates/runtime/src/sync/sched.rs:
crates/runtime/src/sync/atomic.rs:
crates/runtime/src/sync/thread.rs:
