/root/repo/target/release/deps/tempstream_bench-081c6b21a34336cf.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-081c6b21a34336cf.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-081c6b21a34336cf.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
