/root/repo/target/release/deps/simulator_throughput-dc72b3d00077405a.d: crates/bench/benches/simulator_throughput.rs

/root/repo/target/release/deps/simulator_throughput-dc72b3d00077405a: crates/bench/benches/simulator_throughput.rs

crates/bench/benches/simulator_throughput.rs:
