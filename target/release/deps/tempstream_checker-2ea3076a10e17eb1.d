/root/repo/target/release/deps/tempstream_checker-2ea3076a10e17eb1.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/release/deps/libtempstream_checker-2ea3076a10e17eb1.rlib: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/release/deps/libtempstream_checker-2ea3076a10e17eb1.rmeta: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
