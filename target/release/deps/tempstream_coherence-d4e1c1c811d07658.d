/root/repo/target/release/deps/tempstream_coherence-d4e1c1c811d07658.d: crates/coherence/src/lib.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/single_chip.rs

/root/repo/target/release/deps/tempstream_coherence-d4e1c1c811d07658: crates/coherence/src/lib.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/single_chip.rs

crates/coherence/src/lib.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/single_chip.rs:
