/root/repo/target/release/deps/runtime_scaling-f156bf52b0bdcf2b.d: crates/bench/benches/runtime_scaling.rs

/root/repo/target/release/deps/runtime_scaling-f156bf52b0bdcf2b: crates/bench/benches/runtime_scaling.rs

crates/bench/benches/runtime_scaling.rs:
