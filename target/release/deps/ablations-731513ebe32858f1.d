/root/repo/target/release/deps/ablations-731513ebe32858f1.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-731513ebe32858f1: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
