/root/repo/target/release/deps/ablations-d583fbc6018a6e26.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-d583fbc6018a6e26: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
