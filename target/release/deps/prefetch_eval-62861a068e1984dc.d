/root/repo/target/release/deps/prefetch_eval-62861a068e1984dc.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/release/deps/prefetch_eval-62861a068e1984dc: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
