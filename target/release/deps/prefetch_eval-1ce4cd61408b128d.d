/root/repo/target/release/deps/prefetch_eval-1ce4cd61408b128d.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/release/deps/prefetch_eval-1ce4cd61408b128d: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
