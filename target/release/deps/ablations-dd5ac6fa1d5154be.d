/root/repo/target/release/deps/ablations-dd5ac6fa1d5154be.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-dd5ac6fa1d5154be: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
