/root/repo/target/release/deps/prefetch_eval-0b0b6e33272bbe34.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/release/deps/prefetch_eval-0b0b6e33272bbe34: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
