/root/repo/target/release/deps/tables_origins-91ebaefa6eca9f07.d: crates/bench/benches/tables_origins.rs

/root/repo/target/release/deps/tables_origins-91ebaefa6eca9f07: crates/bench/benches/tables_origins.rs

crates/bench/benches/tables_origins.rs:
