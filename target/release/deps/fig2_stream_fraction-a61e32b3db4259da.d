/root/repo/target/release/deps/fig2_stream_fraction-a61e32b3db4259da.d: crates/bench/benches/fig2_stream_fraction.rs

/root/repo/target/release/deps/fig2_stream_fraction-a61e32b3db4259da: crates/bench/benches/fig2_stream_fraction.rs

crates/bench/benches/fig2_stream_fraction.rs:
