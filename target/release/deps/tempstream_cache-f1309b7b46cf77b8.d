/root/repo/target/release/deps/tempstream_cache-f1309b7b46cf77b8.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libtempstream_cache-f1309b7b46cf77b8.rlib: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libtempstream_cache-f1309b7b46cf77b8.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
