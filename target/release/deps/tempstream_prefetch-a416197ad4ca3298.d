/root/repo/target/release/deps/tempstream_prefetch-a416197ad4ca3298.d: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/release/deps/libtempstream_prefetch-a416197ad4ca3298.rlib: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/release/deps/libtempstream_prefetch-a416197ad4ca3298.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/eval.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/temporal.rs:
