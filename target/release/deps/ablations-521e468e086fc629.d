/root/repo/target/release/deps/ablations-521e468e086fc629.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-521e468e086fc629: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
