/root/repo/target/release/deps/tempstream_sequitur-6ba64850d5674ee7.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/release/deps/libtempstream_sequitur-6ba64850d5674ee7.rlib: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/release/deps/libtempstream_sequitur-6ba64850d5674ee7.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
