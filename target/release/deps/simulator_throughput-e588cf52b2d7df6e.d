/root/repo/target/release/deps/simulator_throughput-e588cf52b2d7df6e.d: crates/bench/benches/simulator_throughput.rs

/root/repo/target/release/deps/simulator_throughput-e588cf52b2d7df6e: crates/bench/benches/simulator_throughput.rs

crates/bench/benches/simulator_throughput.rs:
