/root/repo/target/release/deps/tempstream_bench-5f689fa9815d7e75.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-5f689fa9815d7e75.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-5f689fa9815d7e75.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
