/root/repo/target/release/deps/check_protocols-1a86e7f8e39ac5c4.d: crates/checker/src/main.rs

/root/repo/target/release/deps/check_protocols-1a86e7f8e39ac5c4: crates/checker/src/main.rs

crates/checker/src/main.rs:
