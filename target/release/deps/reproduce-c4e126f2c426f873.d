/root/repo/target/release/deps/reproduce-c4e126f2c426f873.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-c4e126f2c426f873: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
