/root/repo/target/release/deps/serve_ingest-63683e5b85e63ce7.d: crates/bench/benches/serve_ingest.rs

/root/repo/target/release/deps/serve_ingest-63683e5b85e63ce7: crates/bench/benches/serve_ingest.rs

crates/bench/benches/serve_ingest.rs:
