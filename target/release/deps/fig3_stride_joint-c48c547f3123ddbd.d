/root/repo/target/release/deps/fig3_stride_joint-c48c547f3123ddbd.d: crates/bench/benches/fig3_stride_joint.rs

/root/repo/target/release/deps/fig3_stride_joint-c48c547f3123ddbd: crates/bench/benches/fig3_stride_joint.rs

crates/bench/benches/fig3_stride_joint.rs:
