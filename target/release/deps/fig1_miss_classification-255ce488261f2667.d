/root/repo/target/release/deps/fig1_miss_classification-255ce488261f2667.d: crates/bench/benches/fig1_miss_classification.rs

/root/repo/target/release/deps/fig1_miss_classification-255ce488261f2667: crates/bench/benches/fig1_miss_classification.rs

crates/bench/benches/fig1_miss_classification.rs:
