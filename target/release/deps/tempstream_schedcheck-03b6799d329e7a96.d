/root/repo/target/release/deps/tempstream_schedcheck-03b6799d329e7a96.d: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

/root/repo/target/release/deps/libtempstream_schedcheck-03b6799d329e7a96.rlib: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

/root/repo/target/release/deps/libtempstream_schedcheck-03b6799d329e7a96.rmeta: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

crates/schedcheck/src/lib.rs:
crates/schedcheck/src/models.rs:
crates/schedcheck/src/mutation.rs:
