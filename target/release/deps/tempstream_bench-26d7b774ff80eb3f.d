/root/repo/target/release/deps/tempstream_bench-26d7b774ff80eb3f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-26d7b774ff80eb3f.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-26d7b774ff80eb3f.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
