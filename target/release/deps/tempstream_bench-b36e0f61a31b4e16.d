/root/repo/target/release/deps/tempstream_bench-b36e0f61a31b4e16.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/tempstream_bench-b36e0f61a31b4e16: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
