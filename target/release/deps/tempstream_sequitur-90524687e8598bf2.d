/root/repo/target/release/deps/tempstream_sequitur-90524687e8598bf2.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/release/deps/libtempstream_sequitur-90524687e8598bf2.rlib: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/release/deps/libtempstream_sequitur-90524687e8598bf2.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
