/root/repo/target/release/deps/tempstream_cache-e240c3f4a811b049.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/tempstream_cache-e240c3f4a811b049: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
