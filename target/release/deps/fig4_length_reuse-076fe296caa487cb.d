/root/repo/target/release/deps/fig4_length_reuse-076fe296caa487cb.d: crates/bench/benches/fig4_length_reuse.rs

/root/repo/target/release/deps/fig4_length_reuse-076fe296caa487cb: crates/bench/benches/fig4_length_reuse.rs

crates/bench/benches/fig4_length_reuse.rs:
