/root/repo/target/release/deps/tempstream_prefetch-0edcefc65024cf4e.d: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/release/deps/libtempstream_prefetch-0edcefc65024cf4e.rlib: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/release/deps/libtempstream_prefetch-0edcefc65024cf4e.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/eval.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/temporal.rs:
