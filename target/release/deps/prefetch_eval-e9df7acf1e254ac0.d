/root/repo/target/release/deps/prefetch_eval-e9df7acf1e254ac0.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/release/deps/prefetch_eval-e9df7acf1e254ac0: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
