/root/repo/target/release/deps/runtime_scaling-d18bd5ecf5b33c69.d: crates/bench/benches/runtime_scaling.rs

/root/repo/target/release/deps/runtime_scaling-d18bd5ecf5b33c69: crates/bench/benches/runtime_scaling.rs

crates/bench/benches/runtime_scaling.rs:
