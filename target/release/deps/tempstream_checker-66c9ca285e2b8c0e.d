/root/repo/target/release/deps/tempstream_checker-66c9ca285e2b8c0e.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/release/deps/libtempstream_checker-66c9ca285e2b8c0e.rlib: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/release/deps/libtempstream_checker-66c9ca285e2b8c0e.rmeta: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
