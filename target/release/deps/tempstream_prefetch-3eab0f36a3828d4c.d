/root/repo/target/release/deps/tempstream_prefetch-3eab0f36a3828d4c.d: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/release/deps/tempstream_prefetch-3eab0f36a3828d4c: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/eval.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/temporal.rs:
