/root/repo/target/release/deps/sequitur_throughput-78799af396f44492.d: crates/bench/benches/sequitur_throughput.rs

/root/repo/target/release/deps/sequitur_throughput-78799af396f44492: crates/bench/benches/sequitur_throughput.rs

crates/bench/benches/sequitur_throughput.rs:
