/root/repo/target/release/deps/tempstream_schedcheck-9750a1666721b052.d: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

/root/repo/target/release/deps/libtempstream_schedcheck-9750a1666721b052.rlib: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

/root/repo/target/release/deps/libtempstream_schedcheck-9750a1666721b052.rmeta: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

crates/schedcheck/src/lib.rs:
crates/schedcheck/src/models.rs:
crates/schedcheck/src/mutation.rs:
