/root/repo/target/release/deps/reproduce-48513b7a67d0a366.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-48513b7a67d0a366: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
