/root/repo/target/release/deps/simulator_throughput-9a2ee15a253d69c7.d: crates/bench/benches/simulator_throughput.rs

/root/repo/target/release/deps/simulator_throughput-9a2ee15a253d69c7: crates/bench/benches/simulator_throughput.rs

crates/bench/benches/simulator_throughput.rs:
