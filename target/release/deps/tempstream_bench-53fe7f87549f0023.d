/root/repo/target/release/deps/tempstream_bench-53fe7f87549f0023.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-53fe7f87549f0023.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-53fe7f87549f0023.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
