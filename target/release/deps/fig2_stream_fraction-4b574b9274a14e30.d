/root/repo/target/release/deps/fig2_stream_fraction-4b574b9274a14e30.d: crates/bench/benches/fig2_stream_fraction.rs

/root/repo/target/release/deps/fig2_stream_fraction-4b574b9274a14e30: crates/bench/benches/fig2_stream_fraction.rs

crates/bench/benches/fig2_stream_fraction.rs:
