/root/repo/target/release/deps/ablations-eea8ad291758e6bb.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-eea8ad291758e6bb: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
