/root/repo/target/release/deps/ablations-1611892cf7d4a5c0.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-1611892cf7d4a5c0: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
