/root/repo/target/release/deps/fig1_miss_classification-33330ce5128a232f.d: crates/bench/benches/fig1_miss_classification.rs

/root/repo/target/release/deps/fig1_miss_classification-33330ce5128a232f: crates/bench/benches/fig1_miss_classification.rs

crates/bench/benches/fig1_miss_classification.rs:
