/root/repo/target/release/deps/tempstream_trace-eec782b6da82359d.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/category.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/miss.rs crates/trace/src/rng.rs crates/trace/src/sink.rs crates/trace/src/stats.rs crates/trace/src/symbol.rs crates/trace/src/threading.rs

/root/repo/target/release/deps/libtempstream_trace-eec782b6da82359d.rlib: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/category.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/miss.rs crates/trace/src/rng.rs crates/trace/src/sink.rs crates/trace/src/stats.rs crates/trace/src/symbol.rs crates/trace/src/threading.rs

/root/repo/target/release/deps/libtempstream_trace-eec782b6da82359d.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/category.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/miss.rs crates/trace/src/rng.rs crates/trace/src/sink.rs crates/trace/src/stats.rs crates/trace/src/symbol.rs crates/trace/src/threading.rs

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/addr.rs:
crates/trace/src/category.rs:
crates/trace/src/ids.rs:
crates/trace/src/io.rs:
crates/trace/src/miss.rs:
crates/trace/src/rng.rs:
crates/trace/src/sink.rs:
crates/trace/src/stats.rs:
crates/trace/src/symbol.rs:
crates/trace/src/threading.rs:
