/root/repo/target/release/deps/tempstream_bench-2fcc8947f5e63d74.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-2fcc8947f5e63d74.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-2fcc8947f5e63d74.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
