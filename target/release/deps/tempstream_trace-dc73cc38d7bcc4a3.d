/root/repo/target/release/deps/tempstream_trace-dc73cc38d7bcc4a3.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/category.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/miss.rs crates/trace/src/rng.rs crates/trace/src/sink.rs crates/trace/src/stats.rs crates/trace/src/symbol.rs

/root/repo/target/release/deps/tempstream_trace-dc73cc38d7bcc4a3: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/category.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/miss.rs crates/trace/src/rng.rs crates/trace/src/sink.rs crates/trace/src/stats.rs crates/trace/src/symbol.rs

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/addr.rs:
crates/trace/src/category.rs:
crates/trace/src/ids.rs:
crates/trace/src/io.rs:
crates/trace/src/miss.rs:
crates/trace/src/rng.rs:
crates/trace/src/sink.rs:
crates/trace/src/stats.rs:
crates/trace/src/symbol.rs:
