/root/repo/target/release/deps/reproduce-3e8cf2e6491ab556.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-3e8cf2e6491ab556: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
