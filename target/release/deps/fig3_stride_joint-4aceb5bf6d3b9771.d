/root/repo/target/release/deps/fig3_stride_joint-4aceb5bf6d3b9771.d: crates/bench/benches/fig3_stride_joint.rs

/root/repo/target/release/deps/fig3_stride_joint-4aceb5bf6d3b9771: crates/bench/benches/fig3_stride_joint.rs

crates/bench/benches/fig3_stride_joint.rs:
