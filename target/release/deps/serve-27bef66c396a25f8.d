/root/repo/target/release/deps/serve-27bef66c396a25f8.d: crates/serve/src/bin/serve.rs

/root/repo/target/release/deps/serve-27bef66c396a25f8: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
