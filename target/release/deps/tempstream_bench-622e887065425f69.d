/root/repo/target/release/deps/tempstream_bench-622e887065425f69.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-622e887065425f69.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-622e887065425f69.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
