/root/repo/target/release/deps/tempstream_core-2f63441a5e5dc8a1.d: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/streams.rs crates/core/src/stride.rs

/root/repo/target/release/deps/tempstream_core-2f63441a5e5dc8a1: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/streams.rs crates/core/src/stride.rs

crates/core/src/lib.rs:
crates/core/src/distribution.rs:
crates/core/src/experiment.rs:
crates/core/src/functions.rs:
crates/core/src/origins.rs:
crates/core/src/report.rs:
crates/core/src/spatial.rs:
crates/core/src/streams.rs:
crates/core/src/stride.rs:
