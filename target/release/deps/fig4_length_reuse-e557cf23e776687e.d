/root/repo/target/release/deps/fig4_length_reuse-e557cf23e776687e.d: crates/bench/benches/fig4_length_reuse.rs

/root/repo/target/release/deps/fig4_length_reuse-e557cf23e776687e: crates/bench/benches/fig4_length_reuse.rs

crates/bench/benches/fig4_length_reuse.rs:
