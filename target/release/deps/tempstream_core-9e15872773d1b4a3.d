/root/repo/target/release/deps/tempstream_core-9e15872773d1b4a3.d: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

/root/repo/target/release/deps/libtempstream_core-9e15872773d1b4a3.rlib: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

/root/repo/target/release/deps/libtempstream_core-9e15872773d1b4a3.rmeta: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

crates/core/src/lib.rs:
crates/core/src/distribution.rs:
crates/core/src/experiment.rs:
crates/core/src/functions.rs:
crates/core/src/origins.rs:
crates/core/src/report.rs:
crates/core/src/spatial.rs:
crates/core/src/stages.rs:
crates/core/src/streams.rs:
crates/core/src/stride.rs:
