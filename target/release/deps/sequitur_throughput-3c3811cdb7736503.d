/root/repo/target/release/deps/sequitur_throughput-3c3811cdb7736503.d: crates/bench/benches/sequitur_throughput.rs

/root/repo/target/release/deps/sequitur_throughput-3c3811cdb7736503: crates/bench/benches/sequitur_throughput.rs

crates/bench/benches/sequitur_throughput.rs:
