/root/repo/target/release/deps/fig1_miss_classification-8447f5e7777729a6.d: crates/bench/benches/fig1_miss_classification.rs

/root/repo/target/release/deps/fig1_miss_classification-8447f5e7777729a6: crates/bench/benches/fig1_miss_classification.rs

crates/bench/benches/fig1_miss_classification.rs:
