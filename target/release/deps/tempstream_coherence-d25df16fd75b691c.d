/root/repo/target/release/deps/tempstream_coherence-d25df16fd75b691c.d: crates/coherence/src/lib.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/release/deps/libtempstream_coherence-d25df16fd75b691c.rlib: crates/coherence/src/lib.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/release/deps/libtempstream_coherence-d25df16fd75b691c.rmeta: crates/coherence/src/lib.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

crates/coherence/src/lib.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
