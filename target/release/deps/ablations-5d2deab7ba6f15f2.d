/root/repo/target/release/deps/ablations-5d2deab7ba6f15f2.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-5d2deab7ba6f15f2: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
