/root/repo/target/release/deps/tables_origins-7fe182eb4ba2ccae.d: crates/bench/benches/tables_origins.rs

/root/repo/target/release/deps/tables_origins-7fe182eb4ba2ccae: crates/bench/benches/tables_origins.rs

crates/bench/benches/tables_origins.rs:
