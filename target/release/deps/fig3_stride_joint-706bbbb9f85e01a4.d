/root/repo/target/release/deps/fig3_stride_joint-706bbbb9f85e01a4.d: crates/bench/benches/fig3_stride_joint.rs

/root/repo/target/release/deps/fig3_stride_joint-706bbbb9f85e01a4: crates/bench/benches/fig3_stride_joint.rs

crates/bench/benches/fig3_stride_joint.rs:
