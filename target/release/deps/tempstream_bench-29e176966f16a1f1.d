/root/repo/target/release/deps/tempstream_bench-29e176966f16a1f1.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-29e176966f16a1f1.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtempstream_bench-29e176966f16a1f1.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
