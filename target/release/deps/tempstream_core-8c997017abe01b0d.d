/root/repo/target/release/deps/tempstream_core-8c997017abe01b0d.d: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

/root/repo/target/release/deps/libtempstream_core-8c997017abe01b0d.rlib: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

/root/repo/target/release/deps/libtempstream_core-8c997017abe01b0d.rmeta: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

crates/core/src/lib.rs:
crates/core/src/distribution.rs:
crates/core/src/experiment.rs:
crates/core/src/functions.rs:
crates/core/src/origins.rs:
crates/core/src/report.rs:
crates/core/src/spatial.rs:
crates/core/src/stages.rs:
crates/core/src/streams.rs:
crates/core/src/stride.rs:
