/root/repo/target/release/deps/tempstream_sequitur-bdbe96939bd6bdd0.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/release/deps/libtempstream_sequitur-bdbe96939bd6bdd0.rlib: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/release/deps/libtempstream_sequitur-bdbe96939bd6bdd0.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
