/root/repo/target/release/deps/prefetch_eval-1c1b899860961e98.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/release/deps/prefetch_eval-1c1b899860961e98: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
