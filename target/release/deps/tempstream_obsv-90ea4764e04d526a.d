/root/repo/target/release/deps/tempstream_obsv-90ea4764e04d526a.d: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

/root/repo/target/release/deps/libtempstream_obsv-90ea4764e04d526a.rlib: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

/root/repo/target/release/deps/libtempstream_obsv-90ea4764e04d526a.rmeta: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

crates/obsv/src/lib.rs:
crates/obsv/src/json.rs:
crates/obsv/src/registry.rs:
