/root/repo/target/release/deps/reproduce-010e0d8c5b5ff168.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-010e0d8c5b5ff168: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
