/root/repo/target/release/deps/check_schedules-aa4c10976304abd6.d: crates/schedcheck/src/main.rs

/root/repo/target/release/deps/check_schedules-aa4c10976304abd6: crates/schedcheck/src/main.rs

crates/schedcheck/src/main.rs:
