/root/repo/target/release/deps/tempstream_serve-50c0aad192eeab60.d: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

/root/repo/target/release/deps/libtempstream_serve-50c0aad192eeab60.rlib: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

/root/repo/target/release/deps/libtempstream_serve-50c0aad192eeab60.rmeta: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

crates/serve/src/lib.rs:
crates/serve/src/offline.rs:
crates/serve/src/queue.rs:
crates/serve/src/server.rs:
crates/serve/src/shard.rs:
crates/serve/src/wire.rs:
