/root/repo/target/release/deps/ablations-edb913a29c25922f.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-edb913a29c25922f: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
