/root/repo/target/release/deps/reproduce-38ab15d217e862c0.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-38ab15d217e862c0: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
