/root/repo/target/release/deps/tempstream_coherence-5da6d57dd63f1714.d: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/release/deps/libtempstream_coherence-5da6d57dd63f1714.rlib: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/release/deps/libtempstream_coherence-5da6d57dd63f1714.rmeta: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

crates/coherence/src/lib.rs:
crates/coherence/src/events.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
