/root/repo/target/release/deps/serve_load-86859e945a5ee319.d: crates/serve/src/bin/serve_load.rs

/root/repo/target/release/deps/serve_load-86859e945a5ee319: crates/serve/src/bin/serve_load.rs

crates/serve/src/bin/serve_load.rs:
