/root/repo/target/release/deps/prefetch_eval-26b515e04fbda527.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/release/deps/prefetch_eval-26b515e04fbda527: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
