/root/repo/target/release/deps/sequitur_throughput-90e6f1f2f180c2a3.d: crates/bench/benches/sequitur_throughput.rs

/root/repo/target/release/deps/sequitur_throughput-90e6f1f2f180c2a3: crates/bench/benches/sequitur_throughput.rs

crates/bench/benches/sequitur_throughput.rs:
