/root/repo/target/release/deps/reproduce-38032473dca4ad03.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-38032473dca4ad03: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
