/root/repo/target/release/deps/serve-fd156994732b43d7.d: crates/serve/src/bin/serve.rs

/root/repo/target/release/deps/serve-fd156994732b43d7: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
