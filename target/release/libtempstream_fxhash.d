/root/repo/target/release/libtempstream_fxhash.rlib: /root/repo/crates/fxhash/src/lib.rs
