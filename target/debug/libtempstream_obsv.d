/root/repo/target/debug/libtempstream_obsv.rlib: /root/repo/crates/obsv/src/json.rs /root/repo/crates/obsv/src/lib.rs /root/repo/crates/obsv/src/registry.rs
