/root/repo/target/debug/libtempstream_fxhash.rlib: /root/repo/crates/fxhash/src/lib.rs
