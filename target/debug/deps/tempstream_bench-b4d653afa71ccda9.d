/root/repo/target/debug/deps/tempstream_bench-b4d653afa71ccda9.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/tempstream_bench-b4d653afa71ccda9: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
