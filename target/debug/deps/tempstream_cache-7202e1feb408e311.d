/root/repo/target/debug/deps/tempstream_cache-7202e1feb408e311.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/tempstream_cache-7202e1feb408e311: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
