/root/repo/target/debug/deps/prefetch_eval-16c92399a14e7e38.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/prefetch_eval-16c92399a14e7e38: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
