/root/repo/target/debug/deps/composition-d8ab6ccd03cc7fe9.d: crates/workloads/tests/composition.rs

/root/repo/target/debug/deps/composition-d8ab6ccd03cc7fe9: crates/workloads/tests/composition.rs

crates/workloads/tests/composition.rs:
