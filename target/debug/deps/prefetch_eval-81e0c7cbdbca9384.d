/root/repo/target/debug/deps/prefetch_eval-81e0c7cbdbca9384.d: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

/root/repo/target/debug/deps/libprefetch_eval-81e0c7cbdbca9384.rmeta: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

crates/bench/src/bin/prefetch_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
