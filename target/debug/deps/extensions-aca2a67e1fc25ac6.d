/root/repo/target/debug/deps/extensions-aca2a67e1fc25ac6.d: crates/core/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-aca2a67e1fc25ac6: crates/core/../../tests/extensions.rs

crates/core/../../tests/extensions.rs:
