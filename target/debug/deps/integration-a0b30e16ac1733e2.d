/root/repo/target/debug/deps/integration-a0b30e16ac1733e2.d: crates/core/../../tests/integration.rs

/root/repo/target/debug/deps/integration-a0b30e16ac1733e2: crates/core/../../tests/integration.rs

crates/core/../../tests/integration.rs:
