/root/repo/target/debug/deps/reproduce-dc1b22c7c7378853.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-dc1b22c7c7378853: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
