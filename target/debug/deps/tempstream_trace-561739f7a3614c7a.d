/root/repo/target/debug/deps/tempstream_trace-561739f7a3614c7a.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/category.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/miss.rs crates/trace/src/rng.rs crates/trace/src/sink.rs crates/trace/src/stats.rs crates/trace/src/symbol.rs crates/trace/src/threading.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_trace-561739f7a3614c7a.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/category.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/miss.rs crates/trace/src/rng.rs crates/trace/src/sink.rs crates/trace/src/stats.rs crates/trace/src/symbol.rs crates/trace/src/threading.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/addr.rs:
crates/trace/src/category.rs:
crates/trace/src/ids.rs:
crates/trace/src/io.rs:
crates/trace/src/miss.rs:
crates/trace/src/rng.rs:
crates/trace/src/sink.rs:
crates/trace/src/stats.rs:
crates/trace/src/symbol.rs:
crates/trace/src/threading.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
