/root/repo/target/debug/deps/exhaustive-30165000a6f91d02.d: crates/checker/tests/exhaustive.rs

/root/repo/target/debug/deps/exhaustive-30165000a6f91d02: crates/checker/tests/exhaustive.rs

crates/checker/tests/exhaustive.rs:
