/root/repo/target/debug/deps/check_protocols-a6f824635304144c.d: crates/checker/src/main.rs

/root/repo/target/debug/deps/libcheck_protocols-a6f824635304144c.rmeta: crates/checker/src/main.rs

crates/checker/src/main.rs:
