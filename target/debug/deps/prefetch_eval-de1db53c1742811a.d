/root/repo/target/debug/deps/prefetch_eval-de1db53c1742811a.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/prefetch_eval-de1db53c1742811a: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
