/root/repo/target/debug/deps/prefetch_eval-759b1cc9fff2abd2.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/prefetch_eval-759b1cc9fff2abd2: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
