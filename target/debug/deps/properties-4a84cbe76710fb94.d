/root/repo/target/debug/deps/properties-4a84cbe76710fb94.d: crates/sequitur/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4a84cbe76710fb94.rmeta: crates/sequitur/tests/properties.rs Cargo.toml

crates/sequitur/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
