/root/repo/target/debug/deps/prefetch_eval-61356c5f9a09abdb.d: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

/root/repo/target/debug/deps/libprefetch_eval-61356c5f9a09abdb.rmeta: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

crates/bench/src/bin/prefetch_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
