/root/repo/target/debug/deps/tempstream_serve-9151afaa6f77961d.d: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

/root/repo/target/debug/deps/libtempstream_serve-9151afaa6f77961d.rlib: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

/root/repo/target/debug/deps/libtempstream_serve-9151afaa6f77961d.rmeta: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

crates/serve/src/lib.rs:
crates/serve/src/offline.rs:
crates/serve/src/queue.rs:
crates/serve/src/server.rs:
crates/serve/src/shard.rs:
crates/serve/src/wire.rs:
