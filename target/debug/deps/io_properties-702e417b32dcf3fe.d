/root/repo/target/debug/deps/io_properties-702e417b32dcf3fe.d: crates/trace/tests/io_properties.rs

/root/repo/target/debug/deps/libio_properties-702e417b32dcf3fe.rmeta: crates/trace/tests/io_properties.rs

crates/trace/tests/io_properties.rs:
