/root/repo/target/debug/deps/reproduce-877bc6ac0c5cec94.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-877bc6ac0c5cec94.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
