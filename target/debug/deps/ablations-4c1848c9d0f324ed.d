/root/repo/target/debug/deps/ablations-4c1848c9d0f324ed.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-4c1848c9d0f324ed: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
