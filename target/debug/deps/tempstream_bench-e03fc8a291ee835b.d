/root/repo/target/debug/deps/tempstream_bench-e03fc8a291ee835b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/tempstream_bench-e03fc8a291ee835b: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
