/root/repo/target/debug/deps/exhaustive-a66f28b0386c949c.d: crates/checker/tests/exhaustive.rs

/root/repo/target/debug/deps/exhaustive-a66f28b0386c949c: crates/checker/tests/exhaustive.rs

crates/checker/tests/exhaustive.rs:
