/root/repo/target/debug/deps/extensions-61babb74deb29edb.d: crates/core/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-61babb74deb29edb: crates/core/../../tests/extensions.rs

crates/core/../../tests/extensions.rs:
