/root/repo/target/debug/deps/pipeline_properties-a315021dc87dbd02.d: crates/core/../../tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-a315021dc87dbd02: crates/core/../../tests/pipeline_properties.rs

crates/core/../../tests/pipeline_properties.rs:
