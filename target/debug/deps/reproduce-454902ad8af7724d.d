/root/repo/target/debug/deps/reproduce-454902ad8af7724d.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-454902ad8af7724d: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
