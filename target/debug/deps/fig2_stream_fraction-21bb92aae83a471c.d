/root/repo/target/debug/deps/fig2_stream_fraction-21bb92aae83a471c.d: crates/bench/benches/fig2_stream_fraction.rs

/root/repo/target/debug/deps/libfig2_stream_fraction-21bb92aae83a471c.rmeta: crates/bench/benches/fig2_stream_fraction.rs

crates/bench/benches/fig2_stream_fraction.rs:
