/root/repo/target/debug/deps/serve-0e3ca808193f81f8.d: crates/serve/src/bin/serve.rs Cargo.toml

/root/repo/target/debug/deps/libserve-0e3ca808193f81f8.rmeta: crates/serve/src/bin/serve.rs Cargo.toml

crates/serve/src/bin/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
