/root/repo/target/debug/deps/check_protocols-0718fd402b2d31a7.d: crates/checker/src/main.rs

/root/repo/target/debug/deps/check_protocols-0718fd402b2d31a7: crates/checker/src/main.rs

crates/checker/src/main.rs:
