/root/repo/target/debug/deps/reproduce-2159107d2e7717b7.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-2159107d2e7717b7: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
