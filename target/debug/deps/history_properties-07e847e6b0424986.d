/root/repo/target/debug/deps/history_properties-07e847e6b0424986.d: crates/coherence/tests/history_properties.rs Cargo.toml

/root/repo/target/debug/deps/libhistory_properties-07e847e6b0424986.rmeta: crates/coherence/tests/history_properties.rs Cargo.toml

crates/coherence/tests/history_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
