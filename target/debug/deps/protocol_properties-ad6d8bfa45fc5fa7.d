/root/repo/target/debug/deps/protocol_properties-ad6d8bfa45fc5fa7.d: crates/coherence/tests/protocol_properties.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_properties-ad6d8bfa45fc5fa7.rmeta: crates/coherence/tests/protocol_properties.rs Cargo.toml

crates/coherence/tests/protocol_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
