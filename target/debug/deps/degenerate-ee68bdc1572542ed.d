/root/repo/target/debug/deps/degenerate-ee68bdc1572542ed.d: crates/core/../../tests/degenerate.rs Cargo.toml

/root/repo/target/debug/deps/libdegenerate-ee68bdc1572542ed.rmeta: crates/core/../../tests/degenerate.rs Cargo.toml

crates/core/../../tests/degenerate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
