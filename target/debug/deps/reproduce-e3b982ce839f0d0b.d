/root/repo/target/debug/deps/reproduce-e3b982ce839f0d0b.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-e3b982ce839f0d0b.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
