/root/repo/target/debug/deps/history_properties-013db5b25e1b0104.d: crates/coherence/tests/history_properties.rs Cargo.toml

/root/repo/target/debug/deps/libhistory_properties-013db5b25e1b0104.rmeta: crates/coherence/tests/history_properties.rs Cargo.toml

crates/coherence/tests/history_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
