/root/repo/target/debug/deps/prefetch_eval-4e3324823b290ad0.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/prefetch_eval-4e3324823b290ad0: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
