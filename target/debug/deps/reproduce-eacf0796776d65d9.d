/root/repo/target/debug/deps/reproduce-eacf0796776d65d9.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-eacf0796776d65d9: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
