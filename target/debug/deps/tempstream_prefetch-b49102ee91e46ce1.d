/root/repo/target/debug/deps/tempstream_prefetch-b49102ee91e46ce1.d: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/debug/deps/libtempstream_prefetch-b49102ee91e46ce1.rlib: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/debug/deps/libtempstream_prefetch-b49102ee91e46ce1.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/eval.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/temporal.rs:
