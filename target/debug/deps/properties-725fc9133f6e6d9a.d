/root/repo/target/debug/deps/properties-725fc9133f6e6d9a.d: crates/sequitur/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-725fc9133f6e6d9a.rmeta: crates/sequitur/tests/properties.rs Cargo.toml

crates/sequitur/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
