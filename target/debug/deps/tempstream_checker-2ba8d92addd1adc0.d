/root/repo/target/debug/deps/tempstream_checker-2ba8d92addd1adc0.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/lint.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/libtempstream_checker-2ba8d92addd1adc0.rlib: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/lint.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/libtempstream_checker-2ba8d92addd1adc0.rmeta: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/lint.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/lint.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
