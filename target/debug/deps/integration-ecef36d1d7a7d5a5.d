/root/repo/target/debug/deps/integration-ecef36d1d7a7d5a5.d: crates/core/../../tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-ecef36d1d7a7d5a5.rmeta: crates/core/../../tests/integration.rs Cargo.toml

crates/core/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
