/root/repo/target/debug/deps/reproduce-2b53f5db9faa9aba.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-2b53f5db9faa9aba: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
