/root/repo/target/debug/deps/prefetch_eval-ae38f748a0c60be3.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/prefetch_eval-ae38f748a0c60be3: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
