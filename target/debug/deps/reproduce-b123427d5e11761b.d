/root/repo/target/debug/deps/reproduce-b123427d5e11761b.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-b123427d5e11761b: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
