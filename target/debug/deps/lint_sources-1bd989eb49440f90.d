/root/repo/target/debug/deps/lint_sources-1bd989eb49440f90.d: crates/checker/src/bin/lint_sources.rs

/root/repo/target/debug/deps/lint_sources-1bd989eb49440f90: crates/checker/src/bin/lint_sources.rs

crates/checker/src/bin/lint_sources.rs:
