/root/repo/target/debug/deps/ablations-2a6745a8c0702c7c.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-2a6745a8c0702c7c.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
