/root/repo/target/debug/deps/tempstream_cache-9cb74327b08fc265.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libtempstream_cache-9cb74327b08fc265.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
