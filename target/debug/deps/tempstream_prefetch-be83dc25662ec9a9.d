/root/repo/target/debug/deps/tempstream_prefetch-be83dc25662ec9a9.d: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/debug/deps/tempstream_prefetch-be83dc25662ec9a9: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/eval.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/temporal.rs:
