/root/repo/target/debug/deps/tempstream_coherence-35f3502ae3176af0.d: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/debug/deps/tempstream_coherence-35f3502ae3176af0: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

crates/coherence/src/lib.rs:
crates/coherence/src/events.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
