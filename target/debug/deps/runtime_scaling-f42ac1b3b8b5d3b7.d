/root/repo/target/debug/deps/runtime_scaling-f42ac1b3b8b5d3b7.d: crates/bench/benches/runtime_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_scaling-f42ac1b3b8b5d3b7.rmeta: crates/bench/benches/runtime_scaling.rs Cargo.toml

crates/bench/benches/runtime_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
