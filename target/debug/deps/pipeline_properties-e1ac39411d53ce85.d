/root/repo/target/debug/deps/pipeline_properties-e1ac39411d53ce85.d: crates/core/../../tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-e1ac39411d53ce85: crates/core/../../tests/pipeline_properties.rs

crates/core/../../tests/pipeline_properties.rs:
