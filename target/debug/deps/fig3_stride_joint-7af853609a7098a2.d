/root/repo/target/debug/deps/fig3_stride_joint-7af853609a7098a2.d: crates/bench/benches/fig3_stride_joint.rs

/root/repo/target/debug/deps/fig3_stride_joint-7af853609a7098a2: crates/bench/benches/fig3_stride_joint.rs

crates/bench/benches/fig3_stride_joint.rs:
