/root/repo/target/debug/deps/ablations-c80c562a21dca62d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-c80c562a21dca62d: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
