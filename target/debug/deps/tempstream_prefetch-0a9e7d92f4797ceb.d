/root/repo/target/debug/deps/tempstream_prefetch-0a9e7d92f4797ceb.d: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/debug/deps/tempstream_prefetch-0a9e7d92f4797ceb: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/eval.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/temporal.rs:
