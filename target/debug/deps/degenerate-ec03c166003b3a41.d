/root/repo/target/debug/deps/degenerate-ec03c166003b3a41.d: crates/core/../../tests/degenerate.rs

/root/repo/target/debug/deps/degenerate-ec03c166003b3a41: crates/core/../../tests/degenerate.rs

crates/core/../../tests/degenerate.rs:
