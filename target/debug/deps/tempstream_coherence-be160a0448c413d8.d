/root/repo/target/debug/deps/tempstream_coherence-be160a0448c413d8.d: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/debug/deps/libtempstream_coherence-be160a0448c413d8.rlib: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/debug/deps/libtempstream_coherence-be160a0448c413d8.rmeta: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

crates/coherence/src/lib.rs:
crates/coherence/src/events.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
