/root/repo/target/debug/deps/tempstream_sequitur-b4aa8f9218f598a1.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/libtempstream_sequitur-b4aa8f9218f598a1.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
