/root/repo/target/debug/deps/serve-b37c55c74ff36111.d: crates/serve/src/bin/serve.rs

/root/repo/target/debug/deps/serve-b37c55c74ff36111: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
