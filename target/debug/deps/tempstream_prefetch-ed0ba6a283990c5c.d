/root/repo/target/debug/deps/tempstream_prefetch-ed0ba6a283990c5c.d: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/debug/deps/libtempstream_prefetch-ed0ba6a283990c5c.rlib: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/debug/deps/libtempstream_prefetch-ed0ba6a283990c5c.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/eval.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/temporal.rs:
