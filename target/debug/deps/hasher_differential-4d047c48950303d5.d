/root/repo/target/debug/deps/hasher_differential-4d047c48950303d5.d: crates/sequitur/tests/hasher_differential.rs

/root/repo/target/debug/deps/libhasher_differential-4d047c48950303d5.rmeta: crates/sequitur/tests/hasher_differential.rs

crates/sequitur/tests/hasher_differential.rs:
