/root/repo/target/debug/deps/serve_load-11832b516c663650.d: crates/serve/src/bin/serve_load.rs Cargo.toml

/root/repo/target/debug/deps/libserve_load-11832b516c663650.rmeta: crates/serve/src/bin/serve_load.rs Cargo.toml

crates/serve/src/bin/serve_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
