/root/repo/target/debug/deps/prefetch_eval-763cb5c61621d7b8.d: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

/root/repo/target/debug/deps/libprefetch_eval-763cb5c61621d7b8.rmeta: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

crates/bench/src/bin/prefetch_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
