/root/repo/target/debug/deps/extensions-13cffcb40bfa3421.d: crates/core/../../tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-13cffcb40bfa3421.rmeta: crates/core/../../tests/extensions.rs Cargo.toml

crates/core/../../tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
