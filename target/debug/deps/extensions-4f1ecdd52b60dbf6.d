/root/repo/target/debug/deps/extensions-4f1ecdd52b60dbf6.d: crates/core/../../tests/extensions.rs

/root/repo/target/debug/deps/libextensions-4f1ecdd52b60dbf6.rmeta: crates/core/../../tests/extensions.rs

crates/core/../../tests/extensions.rs:
