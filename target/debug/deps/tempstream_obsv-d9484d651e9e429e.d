/root/repo/target/debug/deps/tempstream_obsv-d9484d651e9e429e.d: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

/root/repo/target/debug/deps/tempstream_obsv-d9484d651e9e429e: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

crates/obsv/src/lib.rs:
crates/obsv/src/json.rs:
crates/obsv/src/registry.rs:
