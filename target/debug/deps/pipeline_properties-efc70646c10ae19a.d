/root/repo/target/debug/deps/pipeline_properties-efc70646c10ae19a.d: crates/core/../../tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-efc70646c10ae19a: crates/core/../../tests/pipeline_properties.rs

crates/core/../../tests/pipeline_properties.rs:
