/root/repo/target/debug/deps/composition-9b5e7c9de259fc5f.d: crates/workloads/tests/composition.rs

/root/repo/target/debug/deps/libcomposition-9b5e7c9de259fc5f.rmeta: crates/workloads/tests/composition.rs

crates/workloads/tests/composition.rs:
