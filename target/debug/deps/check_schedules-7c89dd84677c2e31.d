/root/repo/target/debug/deps/check_schedules-7c89dd84677c2e31.d: crates/schedcheck/src/main.rs

/root/repo/target/debug/deps/check_schedules-7c89dd84677c2e31: crates/schedcheck/src/main.rs

crates/schedcheck/src/main.rs:
