/root/repo/target/debug/deps/tempstream_sequitur-098046f89b2d604e.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/tempstream_sequitur-098046f89b2d604e: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
