/root/repo/target/debug/deps/check_protocols-743df625bb485304.d: crates/checker/src/main.rs

/root/repo/target/debug/deps/check_protocols-743df625bb485304: crates/checker/src/main.rs

crates/checker/src/main.rs:
