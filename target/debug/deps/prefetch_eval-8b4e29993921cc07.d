/root/repo/target/debug/deps/prefetch_eval-8b4e29993921cc07.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/prefetch_eval-8b4e29993921cc07: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
