/root/repo/target/debug/deps/tempstream_bench-33a6e78056e316b4.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-33a6e78056e316b4.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
