/root/repo/target/debug/deps/tempstream_bench-cdaf32c558baf794.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-cdaf32c558baf794.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-cdaf32c558baf794.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
