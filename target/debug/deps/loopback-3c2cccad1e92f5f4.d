/root/repo/target/debug/deps/loopback-3c2cccad1e92f5f4.d: crates/serve/tests/loopback.rs

/root/repo/target/debug/deps/loopback-3c2cccad1e92f5f4: crates/serve/tests/loopback.rs

crates/serve/tests/loopback.rs:
