/root/repo/target/debug/deps/tempstream_bench-3010b0f8ad69c68f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_bench-3010b0f8ad69c68f.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
