/root/repo/target/debug/deps/simulator_throughput-366d852c5776523e.d: crates/bench/benches/simulator_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_throughput-366d852c5776523e.rmeta: crates/bench/benches/simulator_throughput.rs Cargo.toml

crates/bench/benches/simulator_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
