/root/repo/target/debug/deps/lint_sources-511f28b4567ae60f.d: crates/checker/src/bin/lint_sources.rs

/root/repo/target/debug/deps/lint_sources-511f28b4567ae60f: crates/checker/src/bin/lint_sources.rs

crates/checker/src/bin/lint_sources.rs:
