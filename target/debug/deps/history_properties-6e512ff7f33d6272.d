/root/repo/target/debug/deps/history_properties-6e512ff7f33d6272.d: crates/coherence/tests/history_properties.rs

/root/repo/target/debug/deps/history_properties-6e512ff7f33d6272: crates/coherence/tests/history_properties.rs

crates/coherence/tests/history_properties.rs:
