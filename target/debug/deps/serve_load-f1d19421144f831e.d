/root/repo/target/debug/deps/serve_load-f1d19421144f831e.d: crates/serve/src/bin/serve_load.rs Cargo.toml

/root/repo/target/debug/deps/libserve_load-f1d19421144f831e.rmeta: crates/serve/src/bin/serve_load.rs Cargo.toml

crates/serve/src/bin/serve_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
