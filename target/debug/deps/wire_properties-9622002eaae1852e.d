/root/repo/target/debug/deps/wire_properties-9622002eaae1852e.d: crates/serve/tests/wire_properties.rs Cargo.toml

/root/repo/target/debug/deps/libwire_properties-9622002eaae1852e.rmeta: crates/serve/tests/wire_properties.rs Cargo.toml

crates/serve/tests/wire_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
