/root/repo/target/debug/deps/serve-f0561549a7210385.d: crates/serve/src/bin/serve.rs

/root/repo/target/debug/deps/serve-f0561549a7210385: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
