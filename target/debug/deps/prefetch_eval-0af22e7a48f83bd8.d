/root/repo/target/debug/deps/prefetch_eval-0af22e7a48f83bd8.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/prefetch_eval-0af22e7a48f83bd8: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
