/root/repo/target/debug/deps/tempstream_sequitur-56c51cba3dcaa52b.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/libtempstream_sequitur-56c51cba3dcaa52b.rlib: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/libtempstream_sequitur-56c51cba3dcaa52b.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
