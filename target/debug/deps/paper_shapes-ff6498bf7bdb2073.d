/root/repo/target/debug/deps/paper_shapes-ff6498bf7bdb2073.d: crates/core/../../tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-ff6498bf7bdb2073: crates/core/../../tests/paper_shapes.rs

crates/core/../../tests/paper_shapes.rs:
