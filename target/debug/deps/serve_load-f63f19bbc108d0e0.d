/root/repo/target/debug/deps/serve_load-f63f19bbc108d0e0.d: crates/serve/src/bin/serve_load.rs

/root/repo/target/debug/deps/serve_load-f63f19bbc108d0e0: crates/serve/src/bin/serve_load.rs

crates/serve/src/bin/serve_load.rs:
