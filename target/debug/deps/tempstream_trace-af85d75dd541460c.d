/root/repo/target/debug/deps/tempstream_trace-af85d75dd541460c.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/category.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/miss.rs crates/trace/src/rng.rs crates/trace/src/sink.rs crates/trace/src/stats.rs crates/trace/src/symbol.rs crates/trace/src/threading.rs

/root/repo/target/debug/deps/libtempstream_trace-af85d75dd541460c.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/category.rs crates/trace/src/ids.rs crates/trace/src/io.rs crates/trace/src/miss.rs crates/trace/src/rng.rs crates/trace/src/sink.rs crates/trace/src/stats.rs crates/trace/src/symbol.rs crates/trace/src/threading.rs

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/addr.rs:
crates/trace/src/category.rs:
crates/trace/src/ids.rs:
crates/trace/src/io.rs:
crates/trace/src/miss.rs:
crates/trace/src/rng.rs:
crates/trace/src/sink.rs:
crates/trace/src/stats.rs:
crates/trace/src/symbol.rs:
crates/trace/src/threading.rs:
