/root/repo/target/debug/deps/fig4_length_reuse-5240638fbb0a9596.d: crates/bench/benches/fig4_length_reuse.rs

/root/repo/target/debug/deps/libfig4_length_reuse-5240638fbb0a9596.rmeta: crates/bench/benches/fig4_length_reuse.rs

crates/bench/benches/fig4_length_reuse.rs:
