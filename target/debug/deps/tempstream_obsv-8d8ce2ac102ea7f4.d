/root/repo/target/debug/deps/tempstream_obsv-8d8ce2ac102ea7f4.d: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_obsv-8d8ce2ac102ea7f4.rmeta: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs Cargo.toml

crates/obsv/src/lib.rs:
crates/obsv/src/json.rs:
crates/obsv/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
