/root/repo/target/debug/deps/tempstream_coherence-5eba719df9605a51.d: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/debug/deps/libtempstream_coherence-5eba719df9605a51.rmeta: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

crates/coherence/src/lib.rs:
crates/coherence/src/events.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
