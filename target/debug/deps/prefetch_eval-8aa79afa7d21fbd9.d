/root/repo/target/debug/deps/prefetch_eval-8aa79afa7d21fbd9.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/libprefetch_eval-8aa79afa7d21fbd9.rmeta: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
