/root/repo/target/debug/deps/protocol_properties-dc6ae5c9aeb35de4.d: crates/coherence/tests/protocol_properties.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_properties-dc6ae5c9aeb35de4.rmeta: crates/coherence/tests/protocol_properties.rs Cargo.toml

crates/coherence/tests/protocol_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
