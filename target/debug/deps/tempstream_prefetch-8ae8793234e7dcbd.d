/root/repo/target/debug/deps/tempstream_prefetch-8ae8793234e7dcbd.d: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/debug/deps/libtempstream_prefetch-8ae8793234e7dcbd.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/eval.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/temporal.rs:
