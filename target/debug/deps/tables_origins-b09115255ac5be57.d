/root/repo/target/debug/deps/tables_origins-b09115255ac5be57.d: crates/bench/benches/tables_origins.rs

/root/repo/target/debug/deps/tables_origins-b09115255ac5be57: crates/bench/benches/tables_origins.rs

crates/bench/benches/tables_origins.rs:
