/root/repo/target/debug/deps/tempstream_fxhash-6523370405614deb.d: crates/fxhash/src/lib.rs

/root/repo/target/debug/deps/libtempstream_fxhash-6523370405614deb.rlib: crates/fxhash/src/lib.rs

/root/repo/target/debug/deps/libtempstream_fxhash-6523370405614deb.rmeta: crates/fxhash/src/lib.rs

crates/fxhash/src/lib.rs:
