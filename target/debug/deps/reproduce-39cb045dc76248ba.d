/root/repo/target/debug/deps/reproduce-39cb045dc76248ba.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-39cb045dc76248ba.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
