/root/repo/target/debug/deps/tempstream_sequitur-6f1a09f3fa550e88.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/libtempstream_sequitur-6f1a09f3fa550e88.rlib: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/libtempstream_sequitur-6f1a09f3fa550e88.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
