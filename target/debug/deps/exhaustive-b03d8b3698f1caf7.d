/root/repo/target/debug/deps/exhaustive-b03d8b3698f1caf7.d: crates/checker/tests/exhaustive.rs

/root/repo/target/debug/deps/exhaustive-b03d8b3698f1caf7: crates/checker/tests/exhaustive.rs

crates/checker/tests/exhaustive.rs:
