/root/repo/target/debug/deps/check_schedules-32c7aae365c43c73.d: crates/schedcheck/src/main.rs

/root/repo/target/debug/deps/check_schedules-32c7aae365c43c73: crates/schedcheck/src/main.rs

crates/schedcheck/src/main.rs:
