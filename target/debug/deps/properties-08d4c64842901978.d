/root/repo/target/debug/deps/properties-08d4c64842901978.d: crates/sequitur/tests/properties.rs

/root/repo/target/debug/deps/properties-08d4c64842901978: crates/sequitur/tests/properties.rs

crates/sequitur/tests/properties.rs:
