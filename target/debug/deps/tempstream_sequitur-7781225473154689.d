/root/repo/target/debug/deps/tempstream_sequitur-7781225473154689.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/libtempstream_sequitur-7781225473154689.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
