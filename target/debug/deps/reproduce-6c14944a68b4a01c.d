/root/repo/target/debug/deps/reproduce-6c14944a68b4a01c.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-6c14944a68b4a01c.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
