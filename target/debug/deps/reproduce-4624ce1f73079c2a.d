/root/repo/target/debug/deps/reproduce-4624ce1f73079c2a.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/libreproduce-4624ce1f73079c2a.rmeta: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
