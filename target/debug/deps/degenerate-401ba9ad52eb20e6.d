/root/repo/target/debug/deps/degenerate-401ba9ad52eb20e6.d: crates/core/../../tests/degenerate.rs

/root/repo/target/debug/deps/degenerate-401ba9ad52eb20e6: crates/core/../../tests/degenerate.rs

crates/core/../../tests/degenerate.rs:
