/root/repo/target/debug/deps/check_protocols-663a13dde0241bb4.d: crates/checker/src/main.rs

/root/repo/target/debug/deps/check_protocols-663a13dde0241bb4: crates/checker/src/main.rs

crates/checker/src/main.rs:
