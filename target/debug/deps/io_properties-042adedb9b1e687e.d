/root/repo/target/debug/deps/io_properties-042adedb9b1e687e.d: crates/trace/tests/io_properties.rs

/root/repo/target/debug/deps/io_properties-042adedb9b1e687e: crates/trace/tests/io_properties.rs

crates/trace/tests/io_properties.rs:
