/root/repo/target/debug/deps/tempstream_schedcheck-52df6fd8bd415947.d: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

/root/repo/target/debug/deps/libtempstream_schedcheck-52df6fd8bd415947.rlib: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

/root/repo/target/debug/deps/libtempstream_schedcheck-52df6fd8bd415947.rmeta: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

crates/schedcheck/src/lib.rs:
crates/schedcheck/src/models.rs:
crates/schedcheck/src/mutation.rs:
