/root/repo/target/debug/deps/check_protocols-781c4392a6d9b602.d: crates/checker/src/main.rs

/root/repo/target/debug/deps/check_protocols-781c4392a6d9b602: crates/checker/src/main.rs

crates/checker/src/main.rs:
