/root/repo/target/debug/deps/serve-946c204efdbbaf36.d: crates/serve/src/bin/serve.rs Cargo.toml

/root/repo/target/debug/deps/libserve-946c204efdbbaf36.rmeta: crates/serve/src/bin/serve.rs Cargo.toml

crates/serve/src/bin/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
