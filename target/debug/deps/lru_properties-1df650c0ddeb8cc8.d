/root/repo/target/debug/deps/lru_properties-1df650c0ddeb8cc8.d: crates/cache/tests/lru_properties.rs

/root/repo/target/debug/deps/liblru_properties-1df650c0ddeb8cc8.rmeta: crates/cache/tests/lru_properties.rs

crates/cache/tests/lru_properties.rs:
