/root/repo/target/debug/deps/fig1_miss_classification-916fbc7ff39e3b9b.d: crates/bench/benches/fig1_miss_classification.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_miss_classification-916fbc7ff39e3b9b.rmeta: crates/bench/benches/fig1_miss_classification.rs Cargo.toml

crates/bench/benches/fig1_miss_classification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
