/root/repo/target/debug/deps/prefetch_eval-53e62ba17800627a.d: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

/root/repo/target/debug/deps/libprefetch_eval-53e62ba17800627a.rmeta: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

crates/bench/src/bin/prefetch_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
