/root/repo/target/debug/deps/pipeline_properties-ccf1737fcb1c6e2e.d: crates/core/../../tests/pipeline_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_properties-ccf1737fcb1c6e2e.rmeta: crates/core/../../tests/pipeline_properties.rs Cargo.toml

crates/core/../../tests/pipeline_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
