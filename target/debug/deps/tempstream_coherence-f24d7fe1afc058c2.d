/root/repo/target/debug/deps/tempstream_coherence-f24d7fe1afc058c2.d: crates/coherence/src/lib.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/debug/deps/libtempstream_coherence-f24d7fe1afc058c2.rlib: crates/coherence/src/lib.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/debug/deps/libtempstream_coherence-f24d7fe1afc058c2.rmeta: crates/coherence/src/lib.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

crates/coherence/src/lib.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
