/root/repo/target/debug/deps/degenerate-087a75bcc8c0b8f8.d: crates/core/../../tests/degenerate.rs

/root/repo/target/debug/deps/degenerate-087a75bcc8c0b8f8: crates/core/../../tests/degenerate.rs

crates/core/../../tests/degenerate.rs:
