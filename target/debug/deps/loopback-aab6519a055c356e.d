/root/repo/target/debug/deps/loopback-aab6519a055c356e.d: crates/serve/tests/loopback.rs Cargo.toml

/root/repo/target/debug/deps/libloopback-aab6519a055c356e.rmeta: crates/serve/tests/loopback.rs Cargo.toml

crates/serve/tests/loopback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
