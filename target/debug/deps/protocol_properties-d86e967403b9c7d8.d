/root/repo/target/debug/deps/protocol_properties-d86e967403b9c7d8.d: crates/coherence/tests/protocol_properties.rs

/root/repo/target/debug/deps/protocol_properties-d86e967403b9c7d8: crates/coherence/tests/protocol_properties.rs

crates/coherence/tests/protocol_properties.rs:
