/root/repo/target/debug/deps/reproduce-7e168df36b780c53.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-7e168df36b780c53: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
