/root/repo/target/debug/deps/tempstream_bench-5598d66626d23bf5.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-5598d66626d23bf5.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
