/root/repo/target/debug/deps/integration-33ef7cc59c81c1c7.d: crates/core/../../tests/integration.rs

/root/repo/target/debug/deps/libintegration-33ef7cc59c81c1c7.rmeta: crates/core/../../tests/integration.rs

crates/core/../../tests/integration.rs:
