/root/repo/target/debug/deps/tempstream_checker-31fb8f1d9dec5e17.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/libtempstream_checker-31fb8f1d9dec5e17.rmeta: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
