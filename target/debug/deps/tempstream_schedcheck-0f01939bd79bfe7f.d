/root/repo/target/debug/deps/tempstream_schedcheck-0f01939bd79bfe7f.d: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_schedcheck-0f01939bd79bfe7f.rmeta: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs Cargo.toml

crates/schedcheck/src/lib.rs:
crates/schedcheck/src/models.rs:
crates/schedcheck/src/mutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
