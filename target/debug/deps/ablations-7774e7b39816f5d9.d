/root/repo/target/debug/deps/ablations-7774e7b39816f5d9.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-7774e7b39816f5d9.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
