/root/repo/target/debug/deps/tempstream_bench-4b8e5fdba9129aa9.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/tempstream_bench-4b8e5fdba9129aa9: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
