/root/repo/target/debug/deps/reproduce-8c7146e072af235c.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-8c7146e072af235c: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
