/root/repo/target/debug/deps/simulator_throughput-6804018e4e931218.d: crates/bench/benches/simulator_throughput.rs

/root/repo/target/debug/deps/simulator_throughput-6804018e4e931218: crates/bench/benches/simulator_throughput.rs

crates/bench/benches/simulator_throughput.rs:
