/root/repo/target/debug/deps/check_protocols-4e98399606fafea7.d: crates/checker/src/main.rs

/root/repo/target/debug/deps/libcheck_protocols-4e98399606fafea7.rmeta: crates/checker/src/main.rs

crates/checker/src/main.rs:
