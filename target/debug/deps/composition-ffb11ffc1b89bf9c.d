/root/repo/target/debug/deps/composition-ffb11ffc1b89bf9c.d: crates/workloads/tests/composition.rs Cargo.toml

/root/repo/target/debug/deps/libcomposition-ffb11ffc1b89bf9c.rmeta: crates/workloads/tests/composition.rs Cargo.toml

crates/workloads/tests/composition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
