/root/repo/target/debug/deps/prefetch_eval-fdb7c257894b1ce3.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/libprefetch_eval-fdb7c257894b1ce3.rmeta: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
