/root/repo/target/debug/deps/pipeline_properties-8144defe7200372d.d: crates/core/../../tests/pipeline_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_properties-8144defe7200372d.rmeta: crates/core/../../tests/pipeline_properties.rs Cargo.toml

crates/core/../../tests/pipeline_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
