/root/repo/target/debug/deps/prefetch_eval-b6da639385d695a5.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/prefetch_eval-b6da639385d695a5: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
