/root/repo/target/debug/deps/paper_shapes-bd43703336516ec2.d: crates/core/../../tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-bd43703336516ec2: crates/core/../../tests/paper_shapes.rs

crates/core/../../tests/paper_shapes.rs:
