/root/repo/target/debug/deps/tempstream_obsv-ecaf1e05b98c3a62.d: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

/root/repo/target/debug/deps/libtempstream_obsv-ecaf1e05b98c3a62.rlib: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

/root/repo/target/debug/deps/libtempstream_obsv-ecaf1e05b98c3a62.rmeta: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

crates/obsv/src/lib.rs:
crates/obsv/src/json.rs:
crates/obsv/src/registry.rs:
