/root/repo/target/debug/deps/tempstream_coherence-230f72c0d38a481f.d: crates/coherence/src/lib.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/debug/deps/tempstream_coherence-230f72c0d38a481f: crates/coherence/src/lib.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

crates/coherence/src/lib.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
