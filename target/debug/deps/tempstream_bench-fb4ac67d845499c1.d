/root/repo/target/debug/deps/tempstream_bench-fb4ac67d845499c1.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-fb4ac67d845499c1.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-fb4ac67d845499c1.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
