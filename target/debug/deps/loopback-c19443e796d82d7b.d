/root/repo/target/debug/deps/loopback-c19443e796d82d7b.d: crates/serve/tests/loopback.rs

/root/repo/target/debug/deps/loopback-c19443e796d82d7b: crates/serve/tests/loopback.rs

crates/serve/tests/loopback.rs:
