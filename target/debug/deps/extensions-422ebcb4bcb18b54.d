/root/repo/target/debug/deps/extensions-422ebcb4bcb18b54.d: crates/core/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-422ebcb4bcb18b54: crates/core/../../tests/extensions.rs

crates/core/../../tests/extensions.rs:
