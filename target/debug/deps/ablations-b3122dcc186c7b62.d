/root/repo/target/debug/deps/ablations-b3122dcc186c7b62.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-b3122dcc186c7b62: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
