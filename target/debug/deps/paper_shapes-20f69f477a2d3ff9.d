/root/repo/target/debug/deps/paper_shapes-20f69f477a2d3ff9.d: crates/core/../../tests/paper_shapes.rs

/root/repo/target/debug/deps/libpaper_shapes-20f69f477a2d3ff9.rmeta: crates/core/../../tests/paper_shapes.rs

crates/core/../../tests/paper_shapes.rs:
