/root/repo/target/debug/deps/tempstream_sequitur-1e3e6e591c9272dd.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/tempstream_sequitur-1e3e6e591c9272dd: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
