/root/repo/target/debug/deps/io_properties-6a589922c507cb16.d: crates/trace/tests/io_properties.rs Cargo.toml

/root/repo/target/debug/deps/libio_properties-6a589922c507cb16.rmeta: crates/trace/tests/io_properties.rs Cargo.toml

crates/trace/tests/io_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
