/root/repo/target/debug/deps/ablations-05c72f63c4a68aa8.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-05c72f63c4a68aa8: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
