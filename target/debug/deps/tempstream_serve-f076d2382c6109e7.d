/root/repo/target/debug/deps/tempstream_serve-f076d2382c6109e7.d: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

/root/repo/target/debug/deps/tempstream_serve-f076d2382c6109e7: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

crates/serve/src/lib.rs:
crates/serve/src/offline.rs:
crates/serve/src/queue.rs:
crates/serve/src/server.rs:
crates/serve/src/shard.rs:
crates/serve/src/wire.rs:
