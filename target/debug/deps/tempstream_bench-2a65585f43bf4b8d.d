/root/repo/target/debug/deps/tempstream_bench-2a65585f43bf4b8d.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-2a65585f43bf4b8d.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-2a65585f43bf4b8d.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
