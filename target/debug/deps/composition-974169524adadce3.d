/root/repo/target/debug/deps/composition-974169524adadce3.d: crates/workloads/tests/composition.rs Cargo.toml

/root/repo/target/debug/deps/libcomposition-974169524adadce3.rmeta: crates/workloads/tests/composition.rs Cargo.toml

crates/workloads/tests/composition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
