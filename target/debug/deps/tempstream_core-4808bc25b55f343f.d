/root/repo/target/debug/deps/tempstream_core-4808bc25b55f343f.d: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_core-4808bc25b55f343f.rmeta: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/distribution.rs:
crates/core/src/experiment.rs:
crates/core/src/functions.rs:
crates/core/src/origins.rs:
crates/core/src/report.rs:
crates/core/src/spatial.rs:
crates/core/src/stages.rs:
crates/core/src/streams.rs:
crates/core/src/stride.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
