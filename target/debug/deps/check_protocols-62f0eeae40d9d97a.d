/root/repo/target/debug/deps/check_protocols-62f0eeae40d9d97a.d: crates/checker/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcheck_protocols-62f0eeae40d9d97a.rmeta: crates/checker/src/main.rs Cargo.toml

crates/checker/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
