/root/repo/target/debug/deps/tempstream_runtime-9693a16f68cdb09a.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs

/root/repo/target/debug/deps/libtempstream_runtime-9693a16f68cdb09a.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/deque.rs:
crates/runtime/src/metrics.rs:
crates/runtime/src/pipeline.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/spill.rs:
