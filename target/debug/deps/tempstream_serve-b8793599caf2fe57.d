/root/repo/target/debug/deps/tempstream_serve-b8793599caf2fe57.d: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

/root/repo/target/debug/deps/libtempstream_serve-b8793599caf2fe57.rlib: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

/root/repo/target/debug/deps/libtempstream_serve-b8793599caf2fe57.rmeta: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

crates/serve/src/lib.rs:
crates/serve/src/offline.rs:
crates/serve/src/queue.rs:
crates/serve/src/server.rs:
crates/serve/src/shard.rs:
crates/serve/src/wire.rs:
