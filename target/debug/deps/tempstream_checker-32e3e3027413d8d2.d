/root/repo/target/debug/deps/tempstream_checker-32e3e3027413d8d2.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/lint.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_checker-32e3e3027413d8d2.rmeta: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/lint.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs Cargo.toml

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/lint.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
