/root/repo/target/debug/deps/paper_shapes-a9ef3cafd97c8a48.d: crates/core/../../tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-a9ef3cafd97c8a48: crates/core/../../tests/paper_shapes.rs

crates/core/../../tests/paper_shapes.rs:
