/root/repo/target/debug/deps/integration-fb61c19602652ca4.d: crates/core/../../tests/integration.rs

/root/repo/target/debug/deps/integration-fb61c19602652ca4: crates/core/../../tests/integration.rs

crates/core/../../tests/integration.rs:
