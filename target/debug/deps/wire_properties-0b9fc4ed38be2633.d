/root/repo/target/debug/deps/wire_properties-0b9fc4ed38be2633.d: crates/serve/tests/wire_properties.rs

/root/repo/target/debug/deps/wire_properties-0b9fc4ed38be2633: crates/serve/tests/wire_properties.rs

crates/serve/tests/wire_properties.rs:
