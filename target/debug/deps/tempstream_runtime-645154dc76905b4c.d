/root/repo/target/debug/deps/tempstream_runtime-645154dc76905b4c.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs crates/runtime/src/sync/mod.rs crates/runtime/src/sync/atomic.rs crates/runtime/src/sync/thread.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_runtime-645154dc76905b4c.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs crates/runtime/src/sync/mod.rs crates/runtime/src/sync/atomic.rs crates/runtime/src/sync/thread.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/deque.rs:
crates/runtime/src/metrics.rs:
crates/runtime/src/pipeline.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/spill.rs:
crates/runtime/src/sync/mod.rs:
crates/runtime/src/sync/atomic.rs:
crates/runtime/src/sync/thread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
