/root/repo/target/debug/deps/ablations-5a769ba41e1bbae6.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-5a769ba41e1bbae6: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
