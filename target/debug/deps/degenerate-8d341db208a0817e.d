/root/repo/target/debug/deps/degenerate-8d341db208a0817e.d: crates/core/../../tests/degenerate.rs

/root/repo/target/debug/deps/libdegenerate-8d341db208a0817e.rmeta: crates/core/../../tests/degenerate.rs

crates/core/../../tests/degenerate.rs:
