/root/repo/target/debug/deps/lru_properties-043f6bbdf316f1ad.d: crates/cache/tests/lru_properties.rs Cargo.toml

/root/repo/target/debug/deps/liblru_properties-043f6bbdf316f1ad.rmeta: crates/cache/tests/lru_properties.rs Cargo.toml

crates/cache/tests/lru_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
