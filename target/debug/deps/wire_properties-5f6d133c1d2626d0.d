/root/repo/target/debug/deps/wire_properties-5f6d133c1d2626d0.d: crates/serve/tests/wire_properties.rs

/root/repo/target/debug/deps/wire_properties-5f6d133c1d2626d0: crates/serve/tests/wire_properties.rs

crates/serve/tests/wire_properties.rs:
