/root/repo/target/debug/deps/protocol_properties-964119fa31db45bf.d: crates/coherence/tests/protocol_properties.rs

/root/repo/target/debug/deps/libprotocol_properties-964119fa31db45bf.rmeta: crates/coherence/tests/protocol_properties.rs

crates/coherence/tests/protocol_properties.rs:
