/root/repo/target/debug/deps/tempstream_schedcheck-580a1b02afa9fe3a.d: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_schedcheck-580a1b02afa9fe3a.rmeta: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs Cargo.toml

crates/schedcheck/src/lib.rs:
crates/schedcheck/src/models.rs:
crates/schedcheck/src/mutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
