/root/repo/target/debug/deps/serve_load-8887b718387f4244.d: crates/serve/src/bin/serve_load.rs

/root/repo/target/debug/deps/serve_load-8887b718387f4244: crates/serve/src/bin/serve_load.rs

crates/serve/src/bin/serve_load.rs:
