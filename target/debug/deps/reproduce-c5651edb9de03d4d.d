/root/repo/target/debug/deps/reproduce-c5651edb9de03d4d.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-c5651edb9de03d4d.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
