/root/repo/target/debug/deps/paper_shapes-4faac69432a4c985.d: crates/core/../../tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-4faac69432a4c985.rmeta: crates/core/../../tests/paper_shapes.rs Cargo.toml

crates/core/../../tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
