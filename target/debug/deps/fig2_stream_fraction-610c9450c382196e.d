/root/repo/target/debug/deps/fig2_stream_fraction-610c9450c382196e.d: crates/bench/benches/fig2_stream_fraction.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_stream_fraction-610c9450c382196e.rmeta: crates/bench/benches/fig2_stream_fraction.rs Cargo.toml

crates/bench/benches/fig2_stream_fraction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
