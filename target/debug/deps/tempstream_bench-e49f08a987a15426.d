/root/repo/target/debug/deps/tempstream_bench-e49f08a987a15426.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/tempstream_bench-e49f08a987a15426: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
