/root/repo/target/debug/deps/serve-9655df4dffec92cc.d: crates/serve/src/bin/serve.rs

/root/repo/target/debug/deps/serve-9655df4dffec92cc: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
