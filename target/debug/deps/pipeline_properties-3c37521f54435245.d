/root/repo/target/debug/deps/pipeline_properties-3c37521f54435245.d: crates/core/../../tests/pipeline_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_properties-3c37521f54435245.rmeta: crates/core/../../tests/pipeline_properties.rs Cargo.toml

crates/core/../../tests/pipeline_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
