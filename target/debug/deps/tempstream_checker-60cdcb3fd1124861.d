/root/repo/target/debug/deps/tempstream_checker-60cdcb3fd1124861.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/tempstream_checker-60cdcb3fd1124861: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
