/root/repo/target/debug/deps/tempstream_obsv-ec7d4c3c5596677c.d: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

/root/repo/target/debug/deps/libtempstream_obsv-ec7d4c3c5596677c.rmeta: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

crates/obsv/src/lib.rs:
crates/obsv/src/json.rs:
crates/obsv/src/registry.rs:
