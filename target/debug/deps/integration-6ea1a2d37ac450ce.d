/root/repo/target/debug/deps/integration-6ea1a2d37ac450ce.d: crates/core/../../tests/integration.rs

/root/repo/target/debug/deps/integration-6ea1a2d37ac450ce: crates/core/../../tests/integration.rs

crates/core/../../tests/integration.rs:
