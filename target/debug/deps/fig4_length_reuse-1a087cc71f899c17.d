/root/repo/target/debug/deps/fig4_length_reuse-1a087cc71f899c17.d: crates/bench/benches/fig4_length_reuse.rs

/root/repo/target/debug/deps/fig4_length_reuse-1a087cc71f899c17: crates/bench/benches/fig4_length_reuse.rs

crates/bench/benches/fig4_length_reuse.rs:
