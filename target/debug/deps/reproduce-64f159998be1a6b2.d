/root/repo/target/debug/deps/reproduce-64f159998be1a6b2.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-64f159998be1a6b2: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
