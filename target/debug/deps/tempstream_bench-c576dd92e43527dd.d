/root/repo/target/debug/deps/tempstream_bench-c576dd92e43527dd.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-c576dd92e43527dd.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-c576dd92e43527dd.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
