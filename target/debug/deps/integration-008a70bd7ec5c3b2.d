/root/repo/target/debug/deps/integration-008a70bd7ec5c3b2.d: crates/core/../../tests/integration.rs

/root/repo/target/debug/deps/integration-008a70bd7ec5c3b2: crates/core/../../tests/integration.rs

crates/core/../../tests/integration.rs:
