/root/repo/target/debug/deps/ablations-b97e265588a457e4.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-b97e265588a457e4.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
