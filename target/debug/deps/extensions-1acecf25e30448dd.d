/root/repo/target/debug/deps/extensions-1acecf25e30448dd.d: crates/core/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-1acecf25e30448dd: crates/core/../../tests/extensions.rs

crates/core/../../tests/extensions.rs:
