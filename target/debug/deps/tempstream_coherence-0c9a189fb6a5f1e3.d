/root/repo/target/debug/deps/tempstream_coherence-0c9a189fb6a5f1e3.d: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_coherence-0c9a189fb6a5f1e3.rmeta: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs Cargo.toml

crates/coherence/src/lib.rs:
crates/coherence/src/events.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
