/root/repo/target/debug/deps/tempstream_bench-0f061e22faae37dd.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-0f061e22faae37dd.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-0f061e22faae37dd.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
