/root/repo/target/debug/deps/hasher_differential-4e60485f0007861f.d: crates/sequitur/tests/hasher_differential.rs

/root/repo/target/debug/deps/hasher_differential-4e60485f0007861f: crates/sequitur/tests/hasher_differential.rs

crates/sequitur/tests/hasher_differential.rs:
