/root/repo/target/debug/deps/lint_sources-de12e47dc586826b.d: crates/checker/src/bin/lint_sources.rs Cargo.toml

/root/repo/target/debug/deps/liblint_sources-de12e47dc586826b.rmeta: crates/checker/src/bin/lint_sources.rs Cargo.toml

crates/checker/src/bin/lint_sources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
