/root/repo/target/debug/deps/fig3_stride_joint-196af044c359763d.d: crates/bench/benches/fig3_stride_joint.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_stride_joint-196af044c359763d.rmeta: crates/bench/benches/fig3_stride_joint.rs Cargo.toml

crates/bench/benches/fig3_stride_joint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
