/root/repo/target/debug/deps/tempstream_fxhash-831b2551f115d509.d: crates/fxhash/src/lib.rs

/root/repo/target/debug/deps/libtempstream_fxhash-831b2551f115d509.rmeta: crates/fxhash/src/lib.rs

crates/fxhash/src/lib.rs:
