/root/repo/target/debug/deps/check_schedules-bad514c1c36ebf63.d: crates/schedcheck/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcheck_schedules-bad514c1c36ebf63.rmeta: crates/schedcheck/src/main.rs Cargo.toml

crates/schedcheck/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
