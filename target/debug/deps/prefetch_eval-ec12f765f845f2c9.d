/root/repo/target/debug/deps/prefetch_eval-ec12f765f845f2c9.d: crates/bench/src/bin/prefetch_eval.rs

/root/repo/target/debug/deps/prefetch_eval-ec12f765f845f2c9: crates/bench/src/bin/prefetch_eval.rs

crates/bench/src/bin/prefetch_eval.rs:
