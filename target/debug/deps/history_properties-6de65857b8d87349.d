/root/repo/target/debug/deps/history_properties-6de65857b8d87349.d: crates/coherence/tests/history_properties.rs

/root/repo/target/debug/deps/history_properties-6de65857b8d87349: crates/coherence/tests/history_properties.rs

crates/coherence/tests/history_properties.rs:
