/root/repo/target/debug/deps/check_protocols-4f05561484607f7f.d: crates/checker/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcheck_protocols-4f05561484607f7f.rmeta: crates/checker/src/main.rs Cargo.toml

crates/checker/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
