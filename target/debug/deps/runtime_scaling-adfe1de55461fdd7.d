/root/repo/target/debug/deps/runtime_scaling-adfe1de55461fdd7.d: crates/bench/benches/runtime_scaling.rs

/root/repo/target/debug/deps/runtime_scaling-adfe1de55461fdd7: crates/bench/benches/runtime_scaling.rs

crates/bench/benches/runtime_scaling.rs:
