/root/repo/target/debug/deps/simulator_throughput-a941d566cef350b5.d: crates/bench/benches/simulator_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_throughput-a941d566cef350b5.rmeta: crates/bench/benches/simulator_throughput.rs Cargo.toml

crates/bench/benches/simulator_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
