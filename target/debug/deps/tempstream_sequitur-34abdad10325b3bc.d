/root/repo/target/debug/deps/tempstream_sequitur-34abdad10325b3bc.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/tempstream_sequitur-34abdad10325b3bc: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
