/root/repo/target/debug/deps/simulator_throughput-9d5d79007da60d46.d: crates/bench/benches/simulator_throughput.rs

/root/repo/target/debug/deps/libsimulator_throughput-9d5d79007da60d46.rmeta: crates/bench/benches/simulator_throughput.rs

crates/bench/benches/simulator_throughput.rs:
