/root/repo/target/debug/deps/tempstream_cache-3a2a8a64a6ad41e4.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libtempstream_cache-3a2a8a64a6ad41e4.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
