/root/repo/target/debug/deps/fig2_stream_fraction-737c1d31b2cd47c9.d: crates/bench/benches/fig2_stream_fraction.rs

/root/repo/target/debug/deps/fig2_stream_fraction-737c1d31b2cd47c9: crates/bench/benches/fig2_stream_fraction.rs

crates/bench/benches/fig2_stream_fraction.rs:
