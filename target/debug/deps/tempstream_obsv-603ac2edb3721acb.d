/root/repo/target/debug/deps/tempstream_obsv-603ac2edb3721acb.d: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

/root/repo/target/debug/deps/libtempstream_obsv-603ac2edb3721acb.rmeta: crates/obsv/src/lib.rs crates/obsv/src/json.rs crates/obsv/src/registry.rs

crates/obsv/src/lib.rs:
crates/obsv/src/json.rs:
crates/obsv/src/registry.rs:
