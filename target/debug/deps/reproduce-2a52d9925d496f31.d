/root/repo/target/debug/deps/reproduce-2a52d9925d496f31.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/libreproduce-2a52d9925d496f31.rmeta: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
