/root/repo/target/debug/deps/fig1_miss_classification-cd5e00ec4bd5a509.d: crates/bench/benches/fig1_miss_classification.rs

/root/repo/target/debug/deps/libfig1_miss_classification-cd5e00ec4bd5a509.rmeta: crates/bench/benches/fig1_miss_classification.rs

crates/bench/benches/fig1_miss_classification.rs:
