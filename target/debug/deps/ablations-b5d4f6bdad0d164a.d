/root/repo/target/debug/deps/ablations-b5d4f6bdad0d164a.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-b5d4f6bdad0d164a.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
