/root/repo/target/debug/deps/history_properties-cc697870adab8bd5.d: crates/coherence/tests/history_properties.rs

/root/repo/target/debug/deps/history_properties-cc697870adab8bd5: crates/coherence/tests/history_properties.rs

crates/coherence/tests/history_properties.rs:
