/root/repo/target/debug/deps/ablations-8a22b626977c4b6a.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-8a22b626977c4b6a.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
