/root/repo/target/debug/deps/tempstream_bench-25f359faa6583c68.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/tempstream_bench-25f359faa6583c68: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
