/root/repo/target/debug/deps/check_schedules-2faac5c2dcdfd9f8.d: crates/schedcheck/src/main.rs

/root/repo/target/debug/deps/check_schedules-2faac5c2dcdfd9f8: crates/schedcheck/src/main.rs

crates/schedcheck/src/main.rs:
