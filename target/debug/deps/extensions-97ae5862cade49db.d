/root/repo/target/debug/deps/extensions-97ae5862cade49db.d: crates/core/../../tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-97ae5862cade49db.rmeta: crates/core/../../tests/extensions.rs Cargo.toml

crates/core/../../tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
