/root/repo/target/debug/deps/tempstream_runtime-88b93bf2e0e74905.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs

/root/repo/target/debug/deps/libtempstream_runtime-88b93bf2e0e74905.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/deque.rs:
crates/runtime/src/metrics.rs:
crates/runtime/src/pipeline.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/spill.rs:
