/root/repo/target/debug/deps/tempstream_schedcheck-d0f1065320d7a56e.d: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

/root/repo/target/debug/deps/tempstream_schedcheck-d0f1065320d7a56e: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

crates/schedcheck/src/lib.rs:
crates/schedcheck/src/models.rs:
crates/schedcheck/src/mutation.rs:
