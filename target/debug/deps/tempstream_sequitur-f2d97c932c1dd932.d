/root/repo/target/debug/deps/tempstream_sequitur-f2d97c932c1dd932.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/libtempstream_sequitur-f2d97c932c1dd932.rlib: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

/root/repo/target/debug/deps/libtempstream_sequitur-f2d97c932c1dd932.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
