/root/repo/target/debug/deps/reproduce-9ddc33326eca6c82.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-9ddc33326eca6c82: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
