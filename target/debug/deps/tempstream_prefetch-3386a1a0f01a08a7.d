/root/repo/target/debug/deps/tempstream_prefetch-3386a1a0f01a08a7.d: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

/root/repo/target/debug/deps/libtempstream_prefetch-3386a1a0f01a08a7.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/eval.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/temporal.rs:
