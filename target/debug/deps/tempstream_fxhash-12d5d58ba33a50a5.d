/root/repo/target/debug/deps/tempstream_fxhash-12d5d58ba33a50a5.d: crates/fxhash/src/lib.rs

/root/repo/target/debug/deps/libtempstream_fxhash-12d5d58ba33a50a5.rmeta: crates/fxhash/src/lib.rs

crates/fxhash/src/lib.rs:
