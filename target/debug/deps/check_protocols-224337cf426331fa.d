/root/repo/target/debug/deps/check_protocols-224337cf426331fa.d: crates/checker/src/main.rs

/root/repo/target/debug/deps/check_protocols-224337cf426331fa: crates/checker/src/main.rs

crates/checker/src/main.rs:
