/root/repo/target/debug/deps/tempstream_coherence-e58a93d53b1ff485.d: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_coherence-e58a93d53b1ff485.rmeta: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs Cargo.toml

crates/coherence/src/lib.rs:
crates/coherence/src/events.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
