/root/repo/target/debug/deps/reproduce-bb92e861279d913e.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-bb92e861279d913e.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
