/root/repo/target/debug/deps/tempstream_schedcheck-cead70757d29f00a.d: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

/root/repo/target/debug/deps/tempstream_schedcheck-cead70757d29f00a: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

crates/schedcheck/src/lib.rs:
crates/schedcheck/src/models.rs:
crates/schedcheck/src/mutation.rs:
