/root/repo/target/debug/deps/protocol_properties-ef55c692de2b31d4.d: crates/coherence/tests/protocol_properties.rs

/root/repo/target/debug/deps/protocol_properties-ef55c692de2b31d4: crates/coherence/tests/protocol_properties.rs

crates/coherence/tests/protocol_properties.rs:
