/root/repo/target/debug/deps/tempstream_coherence-36f31eb5a7e61440.d: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/debug/deps/libtempstream_coherence-36f31eb5a7e61440.rlib: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

/root/repo/target/debug/deps/libtempstream_coherence-36f31eb5a7e61440.rmeta: crates/coherence/src/lib.rs crates/coherence/src/events.rs crates/coherence/src/history.rs crates/coherence/src/multi_chip.rs crates/coherence/src/protocol.rs crates/coherence/src/single_chip.rs

crates/coherence/src/lib.rs:
crates/coherence/src/events.rs:
crates/coherence/src/history.rs:
crates/coherence/src/multi_chip.rs:
crates/coherence/src/protocol.rs:
crates/coherence/src/single_chip.rs:
