/root/repo/target/debug/deps/fig2_stream_fraction-ce1402fbcecd06f4.d: crates/bench/benches/fig2_stream_fraction.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_stream_fraction-ce1402fbcecd06f4.rmeta: crates/bench/benches/fig2_stream_fraction.rs Cargo.toml

crates/bench/benches/fig2_stream_fraction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
