/root/repo/target/debug/deps/pipeline_properties-f3c23c8098eaf75d.d: crates/core/../../tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-f3c23c8098eaf75d: crates/core/../../tests/pipeline_properties.rs

crates/core/../../tests/pipeline_properties.rs:
