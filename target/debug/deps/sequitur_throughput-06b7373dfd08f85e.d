/root/repo/target/debug/deps/sequitur_throughput-06b7373dfd08f85e.d: crates/bench/benches/sequitur_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsequitur_throughput-06b7373dfd08f85e.rmeta: crates/bench/benches/sequitur_throughput.rs Cargo.toml

crates/bench/benches/sequitur_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
