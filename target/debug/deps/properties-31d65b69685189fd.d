/root/repo/target/debug/deps/properties-31d65b69685189fd.d: crates/sequitur/tests/properties.rs

/root/repo/target/debug/deps/libproperties-31d65b69685189fd.rmeta: crates/sequitur/tests/properties.rs

crates/sequitur/tests/properties.rs:
