/root/repo/target/debug/deps/tempstream_bench-b1adae1f9fee8f7b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-b1adae1f9fee8f7b.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-b1adae1f9fee8f7b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
