/root/repo/target/debug/deps/tempstream_serve-2836218a4c846d0b.d: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_serve-2836218a4c846d0b.rmeta: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/offline.rs:
crates/serve/src/queue.rs:
crates/serve/src/server.rs:
crates/serve/src/shard.rs:
crates/serve/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
