/root/repo/target/debug/deps/ablations-8111c7a556d7fc9c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-8111c7a556d7fc9c: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
