/root/repo/target/debug/deps/lru_properties-fca290bd6624bb03.d: crates/cache/tests/lru_properties.rs

/root/repo/target/debug/deps/lru_properties-fca290bd6624bb03: crates/cache/tests/lru_properties.rs

crates/cache/tests/lru_properties.rs:
