/root/repo/target/debug/deps/tempstream_bench-8dd511c0a17d2695.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-8dd511c0a17d2695.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtempstream_bench-8dd511c0a17d2695.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
