/root/repo/target/debug/deps/reproduce-4bcfcf8b1a29ba89.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-4bcfcf8b1a29ba89.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
