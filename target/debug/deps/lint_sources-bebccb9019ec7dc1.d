/root/repo/target/debug/deps/lint_sources-bebccb9019ec7dc1.d: crates/checker/src/bin/lint_sources.rs Cargo.toml

/root/repo/target/debug/deps/liblint_sources-bebccb9019ec7dc1.rmeta: crates/checker/src/bin/lint_sources.rs Cargo.toml

crates/checker/src/bin/lint_sources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
