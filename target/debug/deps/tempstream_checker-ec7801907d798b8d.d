/root/repo/target/debug/deps/tempstream_checker-ec7801907d798b8d.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/libtempstream_checker-ec7801907d798b8d.rlib: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/libtempstream_checker-ec7801907d798b8d.rmeta: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
