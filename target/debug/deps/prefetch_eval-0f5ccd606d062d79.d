/root/repo/target/debug/deps/prefetch_eval-0f5ccd606d062d79.d: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

/root/repo/target/debug/deps/libprefetch_eval-0f5ccd606d062d79.rmeta: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

crates/bench/src/bin/prefetch_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
