/root/repo/target/debug/deps/check_protocols-647ace6b16f164d1.d: crates/checker/src/main.rs

/root/repo/target/debug/deps/check_protocols-647ace6b16f164d1: crates/checker/src/main.rs

crates/checker/src/main.rs:
