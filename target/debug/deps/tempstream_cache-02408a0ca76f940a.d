/root/repo/target/debug/deps/tempstream_cache-02408a0ca76f940a.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_cache-02408a0ca76f940a.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
