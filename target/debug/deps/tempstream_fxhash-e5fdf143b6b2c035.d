/root/repo/target/debug/deps/tempstream_fxhash-e5fdf143b6b2c035.d: crates/fxhash/src/lib.rs

/root/repo/target/debug/deps/tempstream_fxhash-e5fdf143b6b2c035: crates/fxhash/src/lib.rs

crates/fxhash/src/lib.rs:
