/root/repo/target/debug/deps/fig1_miss_classification-0c0b0ded2114d850.d: crates/bench/benches/fig1_miss_classification.rs

/root/repo/target/debug/deps/fig1_miss_classification-0c0b0ded2114d850: crates/bench/benches/fig1_miss_classification.rs

crates/bench/benches/fig1_miss_classification.rs:
