/root/repo/target/debug/deps/ablations-66abcef062e29a07.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-66abcef062e29a07: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
