/root/repo/target/debug/deps/integration-d196d38e453dc614.d: crates/core/../../tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-d196d38e453dc614.rmeta: crates/core/../../tests/integration.rs Cargo.toml

crates/core/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
