/root/repo/target/debug/deps/properties-d12603659dd71afb.d: crates/sequitur/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d12603659dd71afb.rmeta: crates/sequitur/tests/properties.rs Cargo.toml

crates/sequitur/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
