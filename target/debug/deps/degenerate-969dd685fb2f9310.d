/root/repo/target/debug/deps/degenerate-969dd685fb2f9310.d: crates/core/../../tests/degenerate.rs Cargo.toml

/root/repo/target/debug/deps/libdegenerate-969dd685fb2f9310.rmeta: crates/core/../../tests/degenerate.rs Cargo.toml

crates/core/../../tests/degenerate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
