/root/repo/target/debug/deps/exhaustive-297bf1e9be6bcde8.d: crates/checker/tests/exhaustive.rs Cargo.toml

/root/repo/target/debug/deps/libexhaustive-297bf1e9be6bcde8.rmeta: crates/checker/tests/exhaustive.rs Cargo.toml

crates/checker/tests/exhaustive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
