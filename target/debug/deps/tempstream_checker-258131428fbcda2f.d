/root/repo/target/debug/deps/tempstream_checker-258131428fbcda2f.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/tempstream_checker-258131428fbcda2f: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
