/root/repo/target/debug/deps/runtime_scaling-1770f77faa2d87a7.d: crates/bench/benches/runtime_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_scaling-1770f77faa2d87a7.rmeta: crates/bench/benches/runtime_scaling.rs Cargo.toml

crates/bench/benches/runtime_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
