/root/repo/target/debug/deps/reproduce-56e3d2f075783e39.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-56e3d2f075783e39: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
