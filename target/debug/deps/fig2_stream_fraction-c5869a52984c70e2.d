/root/repo/target/debug/deps/fig2_stream_fraction-c5869a52984c70e2.d: crates/bench/benches/fig2_stream_fraction.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_stream_fraction-c5869a52984c70e2.rmeta: crates/bench/benches/fig2_stream_fraction.rs Cargo.toml

crates/bench/benches/fig2_stream_fraction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
