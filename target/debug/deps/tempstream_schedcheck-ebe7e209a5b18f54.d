/root/repo/target/debug/deps/tempstream_schedcheck-ebe7e209a5b18f54.d: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_schedcheck-ebe7e209a5b18f54.rmeta: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs Cargo.toml

crates/schedcheck/src/lib.rs:
crates/schedcheck/src/models.rs:
crates/schedcheck/src/mutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
