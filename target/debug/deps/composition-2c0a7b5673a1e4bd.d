/root/repo/target/debug/deps/composition-2c0a7b5673a1e4bd.d: crates/workloads/tests/composition.rs

/root/repo/target/debug/deps/composition-2c0a7b5673a1e4bd: crates/workloads/tests/composition.rs

crates/workloads/tests/composition.rs:
