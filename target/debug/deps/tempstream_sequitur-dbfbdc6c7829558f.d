/root/repo/target/debug/deps/tempstream_sequitur-dbfbdc6c7829558f.d: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_sequitur-dbfbdc6c7829558f.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/builder.rs crates/sequitur/src/grammar.rs crates/sequitur/src/stats.rs Cargo.toml

crates/sequitur/src/lib.rs:
crates/sequitur/src/builder.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
