/root/repo/target/debug/deps/tempstream_checker-06d2a8034f7c50aa.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/libtempstream_checker-06d2a8034f7c50aa.rmeta: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
