/root/repo/target/debug/deps/pipeline_properties-9a189d102bab7be1.d: crates/core/../../tests/pipeline_properties.rs

/root/repo/target/debug/deps/libpipeline_properties-9a189d102bab7be1.rmeta: crates/core/../../tests/pipeline_properties.rs

crates/core/../../tests/pipeline_properties.rs:
