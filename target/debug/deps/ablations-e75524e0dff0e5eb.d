/root/repo/target/debug/deps/ablations-e75524e0dff0e5eb.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-e75524e0dff0e5eb.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
