/root/repo/target/debug/deps/serve_load-90d65bdb3cc49150.d: crates/serve/src/bin/serve_load.rs

/root/repo/target/debug/deps/serve_load-90d65bdb3cc49150: crates/serve/src/bin/serve_load.rs

crates/serve/src/bin/serve_load.rs:
