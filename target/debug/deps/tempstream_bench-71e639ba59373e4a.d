/root/repo/target/debug/deps/tempstream_bench-71e639ba59373e4a.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/tempstream_bench-71e639ba59373e4a: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
