/root/repo/target/debug/deps/sequitur_throughput-7f5729e37576adfd.d: crates/bench/benches/sequitur_throughput.rs

/root/repo/target/debug/deps/libsequitur_throughput-7f5729e37576adfd.rmeta: crates/bench/benches/sequitur_throughput.rs

crates/bench/benches/sequitur_throughput.rs:
