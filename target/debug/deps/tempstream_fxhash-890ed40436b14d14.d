/root/repo/target/debug/deps/tempstream_fxhash-890ed40436b14d14.d: crates/fxhash/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_fxhash-890ed40436b14d14.rmeta: crates/fxhash/src/lib.rs Cargo.toml

crates/fxhash/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
