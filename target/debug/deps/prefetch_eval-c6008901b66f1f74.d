/root/repo/target/debug/deps/prefetch_eval-c6008901b66f1f74.d: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

/root/repo/target/debug/deps/libprefetch_eval-c6008901b66f1f74.rmeta: crates/bench/src/bin/prefetch_eval.rs Cargo.toml

crates/bench/src/bin/prefetch_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
