/root/repo/target/debug/deps/tempstream_runtime-5cdc190a2abae174.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs crates/runtime/src/sync/mod.rs crates/runtime/src/sync/sched.rs crates/runtime/src/sync/atomic.rs crates/runtime/src/sync/thread.rs

/root/repo/target/debug/deps/tempstream_runtime-5cdc190a2abae174: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/deque.rs crates/runtime/src/metrics.rs crates/runtime/src/pipeline.rs crates/runtime/src/pool.rs crates/runtime/src/spill.rs crates/runtime/src/sync/mod.rs crates/runtime/src/sync/sched.rs crates/runtime/src/sync/atomic.rs crates/runtime/src/sync/thread.rs

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/deque.rs:
crates/runtime/src/metrics.rs:
crates/runtime/src/pipeline.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/spill.rs:
crates/runtime/src/sync/mod.rs:
crates/runtime/src/sync/sched.rs:
crates/runtime/src/sync/atomic.rs:
crates/runtime/src/sync/thread.rs:
