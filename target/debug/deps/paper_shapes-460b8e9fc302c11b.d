/root/repo/target/debug/deps/paper_shapes-460b8e9fc302c11b.d: crates/core/../../tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-460b8e9fc302c11b: crates/core/../../tests/paper_shapes.rs

crates/core/../../tests/paper_shapes.rs:
