/root/repo/target/debug/deps/check_schedules-a1e2f6b6c93ac092.d: crates/schedcheck/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcheck_schedules-a1e2f6b6c93ac092.rmeta: crates/schedcheck/src/main.rs Cargo.toml

crates/schedcheck/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
