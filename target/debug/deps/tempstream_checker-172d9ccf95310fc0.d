/root/repo/target/debug/deps/tempstream_checker-172d9ccf95310fc0.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/lint.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/tempstream_checker-172d9ccf95310fc0: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/lint.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/lint.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/checker
