/root/repo/target/debug/deps/simulator_throughput-f56bdc6f1bdafe86.d: crates/bench/benches/simulator_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_throughput-f56bdc6f1bdafe86.rmeta: crates/bench/benches/simulator_throughput.rs Cargo.toml

crates/bench/benches/simulator_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
