/root/repo/target/debug/deps/tables_origins-6eb5684f390c4c29.d: crates/bench/benches/tables_origins.rs Cargo.toml

/root/repo/target/debug/deps/libtables_origins-6eb5684f390c4c29.rmeta: crates/bench/benches/tables_origins.rs Cargo.toml

crates/bench/benches/tables_origins.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
