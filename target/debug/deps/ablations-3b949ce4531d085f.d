/root/repo/target/debug/deps/ablations-3b949ce4531d085f.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-3b949ce4531d085f: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
