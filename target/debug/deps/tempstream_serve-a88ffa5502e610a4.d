/root/repo/target/debug/deps/tempstream_serve-a88ffa5502e610a4.d: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

/root/repo/target/debug/deps/tempstream_serve-a88ffa5502e610a4: crates/serve/src/lib.rs crates/serve/src/offline.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/shard.rs crates/serve/src/wire.rs

crates/serve/src/lib.rs:
crates/serve/src/offline.rs:
crates/serve/src/queue.rs:
crates/serve/src/server.rs:
crates/serve/src/shard.rs:
crates/serve/src/wire.rs:
