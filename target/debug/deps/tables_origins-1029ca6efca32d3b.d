/root/repo/target/debug/deps/tables_origins-1029ca6efca32d3b.d: crates/bench/benches/tables_origins.rs

/root/repo/target/debug/deps/libtables_origins-1029ca6efca32d3b.rmeta: crates/bench/benches/tables_origins.rs

crates/bench/benches/tables_origins.rs:
