/root/repo/target/debug/deps/properties-ab5105601ecf3b57.d: crates/sequitur/tests/properties.rs

/root/repo/target/debug/deps/properties-ab5105601ecf3b57: crates/sequitur/tests/properties.rs

crates/sequitur/tests/properties.rs:
