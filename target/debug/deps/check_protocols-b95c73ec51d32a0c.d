/root/repo/target/debug/deps/check_protocols-b95c73ec51d32a0c.d: crates/checker/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcheck_protocols-b95c73ec51d32a0c.rmeta: crates/checker/src/main.rs Cargo.toml

crates/checker/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
