/root/repo/target/debug/deps/exhaustive-9198030e82b3edf3.d: crates/checker/tests/exhaustive.rs

/root/repo/target/debug/deps/libexhaustive-9198030e82b3edf3.rmeta: crates/checker/tests/exhaustive.rs

crates/checker/tests/exhaustive.rs:
