/root/repo/target/debug/deps/properties-fb4f005019d4434a.d: crates/sequitur/tests/properties.rs

/root/repo/target/debug/deps/properties-fb4f005019d4434a: crates/sequitur/tests/properties.rs

crates/sequitur/tests/properties.rs:
