/root/repo/target/debug/deps/tempstream_cache-4c7f6692cc766306.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libtempstream_cache-4c7f6692cc766306.rlib: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libtempstream_cache-4c7f6692cc766306.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
