/root/repo/target/debug/deps/extensions-f7f9baa64c27ef46.d: crates/core/../../tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-f7f9baa64c27ef46.rmeta: crates/core/../../tests/extensions.rs Cargo.toml

crates/core/../../tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
