/root/repo/target/debug/deps/protocol_properties-e6f8a7b716e00bb6.d: crates/coherence/tests/protocol_properties.rs

/root/repo/target/debug/deps/protocol_properties-e6f8a7b716e00bb6: crates/coherence/tests/protocol_properties.rs

crates/coherence/tests/protocol_properties.rs:
