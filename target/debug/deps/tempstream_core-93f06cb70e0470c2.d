/root/repo/target/debug/deps/tempstream_core-93f06cb70e0470c2.d: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

/root/repo/target/debug/deps/tempstream_core-93f06cb70e0470c2: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

crates/core/src/lib.rs:
crates/core/src/distribution.rs:
crates/core/src/experiment.rs:
crates/core/src/functions.rs:
crates/core/src/origins.rs:
crates/core/src/report.rs:
crates/core/src/spatial.rs:
crates/core/src/stages.rs:
crates/core/src/streams.rs:
crates/core/src/stride.rs:
