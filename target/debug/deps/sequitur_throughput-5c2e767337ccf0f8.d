/root/repo/target/debug/deps/sequitur_throughput-5c2e767337ccf0f8.d: crates/bench/benches/sequitur_throughput.rs

/root/repo/target/debug/deps/sequitur_throughput-5c2e767337ccf0f8: crates/bench/benches/sequitur_throughput.rs

crates/bench/benches/sequitur_throughput.rs:
