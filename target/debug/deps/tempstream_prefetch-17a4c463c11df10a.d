/root/repo/target/debug/deps/tempstream_prefetch-17a4c463c11df10a.d: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_prefetch-17a4c463c11df10a.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/eval.rs crates/prefetch/src/markov.rs crates/prefetch/src/stride.rs crates/prefetch/src/temporal.rs Cargo.toml

crates/prefetch/src/lib.rs:
crates/prefetch/src/eval.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/temporal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
