/root/repo/target/debug/deps/runtime_scaling-58df380ebf1f9aed.d: crates/bench/benches/runtime_scaling.rs

/root/repo/target/debug/deps/libruntime_scaling-58df380ebf1f9aed.rmeta: crates/bench/benches/runtime_scaling.rs

crates/bench/benches/runtime_scaling.rs:
