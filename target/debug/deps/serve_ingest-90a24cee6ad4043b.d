/root/repo/target/debug/deps/serve_ingest-90a24cee6ad4043b.d: crates/bench/benches/serve_ingest.rs Cargo.toml

/root/repo/target/debug/deps/libserve_ingest-90a24cee6ad4043b.rmeta: crates/bench/benches/serve_ingest.rs Cargo.toml

crates/bench/benches/serve_ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
