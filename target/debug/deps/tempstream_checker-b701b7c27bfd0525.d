/root/repo/target/debug/deps/tempstream_checker-b701b7c27bfd0525.d: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/libtempstream_checker-b701b7c27bfd0525.rlib: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

/root/repo/target/debug/deps/libtempstream_checker-b701b7c27bfd0525.rmeta: crates/checker/src/lib.rs crates/checker/src/bfs.rs crates/checker/src/mosi.rs crates/checker/src/msi.rs

crates/checker/src/lib.rs:
crates/checker/src/bfs.rs:
crates/checker/src/mosi.rs:
crates/checker/src/msi.rs:
