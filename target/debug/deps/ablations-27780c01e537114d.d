/root/repo/target/debug/deps/ablations-27780c01e537114d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-27780c01e537114d: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
