/root/repo/target/debug/deps/simulator_throughput-748f5d70d5dde077.d: crates/bench/benches/simulator_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_throughput-748f5d70d5dde077.rmeta: crates/bench/benches/simulator_throughput.rs Cargo.toml

crates/bench/benches/simulator_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
