/root/repo/target/debug/deps/hasher_differential-d2201e476356fea8.d: crates/sequitur/tests/hasher_differential.rs Cargo.toml

/root/repo/target/debug/deps/libhasher_differential-d2201e476356fea8.rmeta: crates/sequitur/tests/hasher_differential.rs Cargo.toml

crates/sequitur/tests/hasher_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
