/root/repo/target/debug/deps/serve_load-f3fde08aa656f51c.d: crates/serve/src/bin/serve_load.rs

/root/repo/target/debug/deps/serve_load-f3fde08aa656f51c: crates/serve/src/bin/serve_load.rs

crates/serve/src/bin/serve_load.rs:
