/root/repo/target/debug/deps/exhaustive-e27a8987ed7b3bfb.d: crates/checker/tests/exhaustive.rs

/root/repo/target/debug/deps/exhaustive-e27a8987ed7b3bfb: crates/checker/tests/exhaustive.rs

crates/checker/tests/exhaustive.rs:
