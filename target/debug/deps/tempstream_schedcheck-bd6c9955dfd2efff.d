/root/repo/target/debug/deps/tempstream_schedcheck-bd6c9955dfd2efff.d: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

/root/repo/target/debug/deps/libtempstream_schedcheck-bd6c9955dfd2efff.rlib: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

/root/repo/target/debug/deps/libtempstream_schedcheck-bd6c9955dfd2efff.rmeta: crates/schedcheck/src/lib.rs crates/schedcheck/src/models.rs crates/schedcheck/src/mutation.rs

crates/schedcheck/src/lib.rs:
crates/schedcheck/src/models.rs:
crates/schedcheck/src/mutation.rs:
