/root/repo/target/debug/deps/fig3_stride_joint-c592570488b86494.d: crates/bench/benches/fig3_stride_joint.rs

/root/repo/target/debug/deps/libfig3_stride_joint-c592570488b86494.rmeta: crates/bench/benches/fig3_stride_joint.rs

crates/bench/benches/fig3_stride_joint.rs:
