/root/repo/target/debug/deps/fig4_length_reuse-a330aaac16d54383.d: crates/bench/benches/fig4_length_reuse.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_length_reuse-a330aaac16d54383.rmeta: crates/bench/benches/fig4_length_reuse.rs Cargo.toml

crates/bench/benches/fig4_length_reuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
