/root/repo/target/debug/deps/tempstream_core-b33c0a7ec1163e9f.d: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

/root/repo/target/debug/deps/libtempstream_core-b33c0a7ec1163e9f.rlib: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

/root/repo/target/debug/deps/libtempstream_core-b33c0a7ec1163e9f.rmeta: crates/core/src/lib.rs crates/core/src/distribution.rs crates/core/src/experiment.rs crates/core/src/functions.rs crates/core/src/origins.rs crates/core/src/report.rs crates/core/src/spatial.rs crates/core/src/stages.rs crates/core/src/streams.rs crates/core/src/stride.rs

crates/core/src/lib.rs:
crates/core/src/distribution.rs:
crates/core/src/experiment.rs:
crates/core/src/functions.rs:
crates/core/src/origins.rs:
crates/core/src/report.rs:
crates/core/src/spatial.rs:
crates/core/src/stages.rs:
crates/core/src/streams.rs:
crates/core/src/stride.rs:
