/root/repo/target/debug/deps/integration-84b46f694118e770.d: crates/core/../../tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-84b46f694118e770.rmeta: crates/core/../../tests/integration.rs Cargo.toml

crates/core/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
