/root/repo/target/debug/deps/check_schedules-44b5b4085d5d1e99.d: crates/schedcheck/src/main.rs

/root/repo/target/debug/deps/check_schedules-44b5b4085d5d1e99: crates/schedcheck/src/main.rs

crates/schedcheck/src/main.rs:
