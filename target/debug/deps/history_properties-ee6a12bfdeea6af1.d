/root/repo/target/debug/deps/history_properties-ee6a12bfdeea6af1.d: crates/coherence/tests/history_properties.rs

/root/repo/target/debug/deps/libhistory_properties-ee6a12bfdeea6af1.rmeta: crates/coherence/tests/history_properties.rs

crates/coherence/tests/history_properties.rs:
