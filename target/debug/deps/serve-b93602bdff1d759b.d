/root/repo/target/debug/deps/serve-b93602bdff1d759b.d: crates/serve/src/bin/serve.rs

/root/repo/target/debug/deps/serve-b93602bdff1d759b: crates/serve/src/bin/serve.rs

crates/serve/src/bin/serve.rs:
