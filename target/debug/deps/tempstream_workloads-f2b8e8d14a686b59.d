/root/repo/target/debug/deps/tempstream_workloads-f2b8e8d14a686b59.d: crates/workloads/src/lib.rs crates/workloads/src/db/mod.rs crates/workloads/src/db/btree.rs crates/workloads/src/db/bufpool.rs crates/workloads/src/db/interp.rs crates/workloads/src/db/log.rs crates/workloads/src/db/table.rs crates/workloads/src/db/txn.rs crates/workloads/src/emitter.rs crates/workloads/src/kernel/mod.rs crates/workloads/src/kernel/blockdev.rs crates/workloads/src/kernel/copy.rs crates/workloads/src/kernel/ip.rs crates/workloads/src/kernel/mmu.rs crates/workloads/src/kernel/sched.rs crates/workloads/src/kernel/streams_ipc.rs crates/workloads/src/kernel/sync.rs crates/workloads/src/kernel/syscall.rs crates/workloads/src/layout.rs crates/workloads/src/misc.rs crates/workloads/src/spec.rs crates/workloads/src/web/mod.rs crates/workloads/src/web/http.rs crates/workloads/src/web/perl.rs crates/workloads/src/workload/mod.rs crates/workloads/src/workload/dss_app.rs crates/workloads/src/workload/oltp_app.rs crates/workloads/src/workload/web_app.rs Cargo.toml

/root/repo/target/debug/deps/libtempstream_workloads-f2b8e8d14a686b59.rmeta: crates/workloads/src/lib.rs crates/workloads/src/db/mod.rs crates/workloads/src/db/btree.rs crates/workloads/src/db/bufpool.rs crates/workloads/src/db/interp.rs crates/workloads/src/db/log.rs crates/workloads/src/db/table.rs crates/workloads/src/db/txn.rs crates/workloads/src/emitter.rs crates/workloads/src/kernel/mod.rs crates/workloads/src/kernel/blockdev.rs crates/workloads/src/kernel/copy.rs crates/workloads/src/kernel/ip.rs crates/workloads/src/kernel/mmu.rs crates/workloads/src/kernel/sched.rs crates/workloads/src/kernel/streams_ipc.rs crates/workloads/src/kernel/sync.rs crates/workloads/src/kernel/syscall.rs crates/workloads/src/layout.rs crates/workloads/src/misc.rs crates/workloads/src/spec.rs crates/workloads/src/web/mod.rs crates/workloads/src/web/http.rs crates/workloads/src/web/perl.rs crates/workloads/src/workload/mod.rs crates/workloads/src/workload/dss_app.rs crates/workloads/src/workload/oltp_app.rs crates/workloads/src/workload/web_app.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/db/mod.rs:
crates/workloads/src/db/btree.rs:
crates/workloads/src/db/bufpool.rs:
crates/workloads/src/db/interp.rs:
crates/workloads/src/db/log.rs:
crates/workloads/src/db/table.rs:
crates/workloads/src/db/txn.rs:
crates/workloads/src/emitter.rs:
crates/workloads/src/kernel/mod.rs:
crates/workloads/src/kernel/blockdev.rs:
crates/workloads/src/kernel/copy.rs:
crates/workloads/src/kernel/ip.rs:
crates/workloads/src/kernel/mmu.rs:
crates/workloads/src/kernel/sched.rs:
crates/workloads/src/kernel/streams_ipc.rs:
crates/workloads/src/kernel/sync.rs:
crates/workloads/src/kernel/syscall.rs:
crates/workloads/src/layout.rs:
crates/workloads/src/misc.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/web/mod.rs:
crates/workloads/src/web/http.rs:
crates/workloads/src/web/perl.rs:
crates/workloads/src/workload/mod.rs:
crates/workloads/src/workload/dss_app.rs:
crates/workloads/src/workload/oltp_app.rs:
crates/workloads/src/workload/web_app.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
