/root/repo/target/debug/deps/check_protocols-42b78fdec464ca6a.d: crates/checker/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcheck_protocols-42b78fdec464ca6a.rmeta: crates/checker/src/main.rs Cargo.toml

crates/checker/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
