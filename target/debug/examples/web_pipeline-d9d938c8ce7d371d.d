/root/repo/target/debug/examples/web_pipeline-d9d938c8ce7d371d.d: crates/core/../../examples/web_pipeline.rs

/root/repo/target/debug/examples/web_pipeline-d9d938c8ce7d371d: crates/core/../../examples/web_pipeline.rs

crates/core/../../examples/web_pipeline.rs:
