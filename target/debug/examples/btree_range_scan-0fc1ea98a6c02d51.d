/root/repo/target/debug/examples/btree_range_scan-0fc1ea98a6c02d51.d: crates/core/../../examples/btree_range_scan.rs

/root/repo/target/debug/examples/libbtree_range_scan-0fc1ea98a6c02d51.rmeta: crates/core/../../examples/btree_range_scan.rs

crates/core/../../examples/btree_range_scan.rs:
