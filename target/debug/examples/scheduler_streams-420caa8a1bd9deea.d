/root/repo/target/debug/examples/scheduler_streams-420caa8a1bd9deea.d: crates/core/../../examples/scheduler_streams.rs

/root/repo/target/debug/examples/scheduler_streams-420caa8a1bd9deea: crates/core/../../examples/scheduler_streams.rs

crates/core/../../examples/scheduler_streams.rs:
