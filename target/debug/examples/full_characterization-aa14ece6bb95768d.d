/root/repo/target/debug/examples/full_characterization-aa14ece6bb95768d.d: crates/core/../../examples/full_characterization.rs

/root/repo/target/debug/examples/full_characterization-aa14ece6bb95768d: crates/core/../../examples/full_characterization.rs

crates/core/../../examples/full_characterization.rs:
