/root/repo/target/debug/examples/quickstart-e7361c86a1898f6c.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e7361c86a1898f6c: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
