/root/repo/target/debug/examples/btree_range_scan-5cef549b57085f1f.d: crates/core/../../examples/btree_range_scan.rs

/root/repo/target/debug/examples/btree_range_scan-5cef549b57085f1f: crates/core/../../examples/btree_range_scan.rs

crates/core/../../examples/btree_range_scan.rs:
