/root/repo/target/debug/examples/btree_range_scan-9c125b35c931a0b8.d: crates/core/../../examples/btree_range_scan.rs

/root/repo/target/debug/examples/btree_range_scan-9c125b35c931a0b8: crates/core/../../examples/btree_range_scan.rs

crates/core/../../examples/btree_range_scan.rs:
