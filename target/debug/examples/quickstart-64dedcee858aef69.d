/root/repo/target/debug/examples/quickstart-64dedcee858aef69.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-64dedcee858aef69.rmeta: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
