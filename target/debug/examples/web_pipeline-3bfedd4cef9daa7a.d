/root/repo/target/debug/examples/web_pipeline-3bfedd4cef9daa7a.d: crates/core/../../examples/web_pipeline.rs

/root/repo/target/debug/examples/libweb_pipeline-3bfedd4cef9daa7a.rmeta: crates/core/../../examples/web_pipeline.rs

crates/core/../../examples/web_pipeline.rs:
