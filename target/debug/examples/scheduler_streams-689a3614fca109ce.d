/root/repo/target/debug/examples/scheduler_streams-689a3614fca109ce.d: crates/core/../../examples/scheduler_streams.rs

/root/repo/target/debug/examples/scheduler_streams-689a3614fca109ce: crates/core/../../examples/scheduler_streams.rs

crates/core/../../examples/scheduler_streams.rs:
