/root/repo/target/debug/examples/probe-e55db57813019508.d: crates/runtime/examples/probe.rs

/root/repo/target/debug/examples/libprobe-e55db57813019508.rmeta: crates/runtime/examples/probe.rs

crates/runtime/examples/probe.rs:
