/root/repo/target/debug/examples/quickstart-05abfc25d2091139.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-05abfc25d2091139: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
