/root/repo/target/debug/examples/web_pipeline-c5d9f4bd2c32e651.d: crates/core/../../examples/web_pipeline.rs

/root/repo/target/debug/examples/web_pipeline-c5d9f4bd2c32e651: crates/core/../../examples/web_pipeline.rs

crates/core/../../examples/web_pipeline.rs:
