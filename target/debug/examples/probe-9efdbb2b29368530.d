/root/repo/target/debug/examples/probe-9efdbb2b29368530.d: crates/runtime/examples/probe.rs

/root/repo/target/debug/examples/probe-9efdbb2b29368530: crates/runtime/examples/probe.rs

crates/runtime/examples/probe.rs:
