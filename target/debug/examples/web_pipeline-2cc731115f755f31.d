/root/repo/target/debug/examples/web_pipeline-2cc731115f755f31.d: crates/core/../../examples/web_pipeline.rs

/root/repo/target/debug/examples/web_pipeline-2cc731115f755f31: crates/core/../../examples/web_pipeline.rs

crates/core/../../examples/web_pipeline.rs:
