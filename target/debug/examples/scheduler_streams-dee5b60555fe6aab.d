/root/repo/target/debug/examples/scheduler_streams-dee5b60555fe6aab.d: crates/core/../../examples/scheduler_streams.rs Cargo.toml

/root/repo/target/debug/examples/libscheduler_streams-dee5b60555fe6aab.rmeta: crates/core/../../examples/scheduler_streams.rs Cargo.toml

crates/core/../../examples/scheduler_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
