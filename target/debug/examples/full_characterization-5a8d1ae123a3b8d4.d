/root/repo/target/debug/examples/full_characterization-5a8d1ae123a3b8d4.d: crates/core/../../examples/full_characterization.rs

/root/repo/target/debug/examples/full_characterization-5a8d1ae123a3b8d4: crates/core/../../examples/full_characterization.rs

crates/core/../../examples/full_characterization.rs:
