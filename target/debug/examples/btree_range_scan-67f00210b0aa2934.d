/root/repo/target/debug/examples/btree_range_scan-67f00210b0aa2934.d: crates/core/../../examples/btree_range_scan.rs Cargo.toml

/root/repo/target/debug/examples/libbtree_range_scan-67f00210b0aa2934.rmeta: crates/core/../../examples/btree_range_scan.rs Cargo.toml

crates/core/../../examples/btree_range_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
