/root/repo/target/debug/examples/scheduler_streams-489f1474592ffd63.d: crates/core/../../examples/scheduler_streams.rs

/root/repo/target/debug/examples/libscheduler_streams-489f1474592ffd63.rmeta: crates/core/../../examples/scheduler_streams.rs

crates/core/../../examples/scheduler_streams.rs:
