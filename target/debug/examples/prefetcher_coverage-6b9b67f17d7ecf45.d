/root/repo/target/debug/examples/prefetcher_coverage-6b9b67f17d7ecf45.d: crates/core/../../examples/prefetcher_coverage.rs

/root/repo/target/debug/examples/prefetcher_coverage-6b9b67f17d7ecf45: crates/core/../../examples/prefetcher_coverage.rs

crates/core/../../examples/prefetcher_coverage.rs:
