/root/repo/target/debug/examples/prefetcher_coverage-e3284b6da01a9145.d: crates/core/../../examples/prefetcher_coverage.rs Cargo.toml

/root/repo/target/debug/examples/libprefetcher_coverage-e3284b6da01a9145.rmeta: crates/core/../../examples/prefetcher_coverage.rs Cargo.toml

crates/core/../../examples/prefetcher_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
