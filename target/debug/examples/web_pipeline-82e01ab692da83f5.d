/root/repo/target/debug/examples/web_pipeline-82e01ab692da83f5.d: crates/core/../../examples/web_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libweb_pipeline-82e01ab692da83f5.rmeta: crates/core/../../examples/web_pipeline.rs Cargo.toml

crates/core/../../examples/web_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
