/root/repo/target/debug/examples/scheduler_streams-194439e3fad05fd3.d: crates/core/../../examples/scheduler_streams.rs

/root/repo/target/debug/examples/scheduler_streams-194439e3fad05fd3: crates/core/../../examples/scheduler_streams.rs

crates/core/../../examples/scheduler_streams.rs:
