/root/repo/target/debug/examples/prefetcher_coverage-63d4fce88c42e8f5.d: crates/core/../../examples/prefetcher_coverage.rs

/root/repo/target/debug/examples/prefetcher_coverage-63d4fce88c42e8f5: crates/core/../../examples/prefetcher_coverage.rs

crates/core/../../examples/prefetcher_coverage.rs:
