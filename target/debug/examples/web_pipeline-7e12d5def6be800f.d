/root/repo/target/debug/examples/web_pipeline-7e12d5def6be800f.d: crates/core/../../examples/web_pipeline.rs

/root/repo/target/debug/examples/web_pipeline-7e12d5def6be800f: crates/core/../../examples/web_pipeline.rs

crates/core/../../examples/web_pipeline.rs:
