/root/repo/target/debug/examples/full_characterization-1db11854ff263868.d: crates/core/../../examples/full_characterization.rs Cargo.toml

/root/repo/target/debug/examples/libfull_characterization-1db11854ff263868.rmeta: crates/core/../../examples/full_characterization.rs Cargo.toml

crates/core/../../examples/full_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
