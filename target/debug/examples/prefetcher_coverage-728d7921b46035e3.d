/root/repo/target/debug/examples/prefetcher_coverage-728d7921b46035e3.d: crates/core/../../examples/prefetcher_coverage.rs Cargo.toml

/root/repo/target/debug/examples/libprefetcher_coverage-728d7921b46035e3.rmeta: crates/core/../../examples/prefetcher_coverage.rs Cargo.toml

crates/core/../../examples/prefetcher_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
