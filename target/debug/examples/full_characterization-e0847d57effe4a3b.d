/root/repo/target/debug/examples/full_characterization-e0847d57effe4a3b.d: crates/core/../../examples/full_characterization.rs

/root/repo/target/debug/examples/full_characterization-e0847d57effe4a3b: crates/core/../../examples/full_characterization.rs

crates/core/../../examples/full_characterization.rs:
