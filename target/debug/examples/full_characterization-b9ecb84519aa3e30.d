/root/repo/target/debug/examples/full_characterization-b9ecb84519aa3e30.d: crates/core/../../examples/full_characterization.rs

/root/repo/target/debug/examples/full_characterization-b9ecb84519aa3e30: crates/core/../../examples/full_characterization.rs

crates/core/../../examples/full_characterization.rs:
