/root/repo/target/debug/examples/prefetcher_coverage-f2204cf6b60213c4.d: crates/core/../../examples/prefetcher_coverage.rs

/root/repo/target/debug/examples/prefetcher_coverage-f2204cf6b60213c4: crates/core/../../examples/prefetcher_coverage.rs

crates/core/../../examples/prefetcher_coverage.rs:
