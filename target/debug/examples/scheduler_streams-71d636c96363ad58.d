/root/repo/target/debug/examples/scheduler_streams-71d636c96363ad58.d: crates/core/../../examples/scheduler_streams.rs

/root/repo/target/debug/examples/scheduler_streams-71d636c96363ad58: crates/core/../../examples/scheduler_streams.rs

crates/core/../../examples/scheduler_streams.rs:
