/root/repo/target/debug/examples/full_characterization-ae98d4e81778635d.d: crates/core/../../examples/full_characterization.rs

/root/repo/target/debug/examples/libfull_characterization-ae98d4e81778635d.rmeta: crates/core/../../examples/full_characterization.rs

crates/core/../../examples/full_characterization.rs:
