/root/repo/target/debug/examples/btree_range_scan-ede699f7ce97c4ea.d: crates/core/../../examples/btree_range_scan.rs

/root/repo/target/debug/examples/btree_range_scan-ede699f7ce97c4ea: crates/core/../../examples/btree_range_scan.rs

crates/core/../../examples/btree_range_scan.rs:
