/root/repo/target/debug/examples/quickstart-e436597d4764a5fe.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e436597d4764a5fe: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
