/root/repo/target/debug/examples/prefetcher_coverage-6a3d3535be339a67.d: crates/core/../../examples/prefetcher_coverage.rs

/root/repo/target/debug/examples/prefetcher_coverage-6a3d3535be339a67: crates/core/../../examples/prefetcher_coverage.rs

crates/core/../../examples/prefetcher_coverage.rs:
