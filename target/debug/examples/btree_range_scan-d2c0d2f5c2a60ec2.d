/root/repo/target/debug/examples/btree_range_scan-d2c0d2f5c2a60ec2.d: crates/core/../../examples/btree_range_scan.rs

/root/repo/target/debug/examples/btree_range_scan-d2c0d2f5c2a60ec2: crates/core/../../examples/btree_range_scan.rs

crates/core/../../examples/btree_range_scan.rs:
