/root/repo/target/debug/examples/prefetcher_coverage-e61b21746715fd88.d: crates/core/../../examples/prefetcher_coverage.rs

/root/repo/target/debug/examples/libprefetcher_coverage-e61b21746715fd88.rmeta: crates/core/../../examples/prefetcher_coverage.rs

crates/core/../../examples/prefetcher_coverage.rs:
