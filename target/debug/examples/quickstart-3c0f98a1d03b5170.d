/root/repo/target/debug/examples/quickstart-3c0f98a1d03b5170.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3c0f98a1d03b5170.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
