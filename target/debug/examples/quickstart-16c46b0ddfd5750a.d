/root/repo/target/debug/examples/quickstart-16c46b0ddfd5750a.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-16c46b0ddfd5750a: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
